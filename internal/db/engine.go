// Package db assembles the storage engine: the simulated device, buffer
// pool, transaction manager and partition buffer, plus the Table
// abstraction that binds a base-table heap (HOT or SIAS) to any mix of
// indexes (B-Tree, PBT, MV-PBT) with physical or logical references. It
// implements the two visibility-check paths the paper contrasts:
//
//   - version-oblivious indexes return candidates → one base-table
//     visibility check (random reads) per candidate (§2, Figure 2);
//   - MV-PBT returns visible entries directly (index-only visibility
//     check, §4.4) — the base table is touched only to fetch payloads.
package db

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"

	"mvpbt/internal/buffer"
	"mvpbt/internal/index/mvpbt"
	"mvpbt/internal/index/part"
	"mvpbt/internal/maint"
	"mvpbt/internal/sfile"
	"mvpbt/internal/simclock"
	"mvpbt/internal/ssd"
	"mvpbt/internal/storage"
	"mvpbt/internal/txn"
	"mvpbt/internal/wal"
)

// Config sizes an Engine.
//
// COPY CONTRACT: Config is a pure value type — every field is a scalar or
// a struct of scalars, so an assignment is a deep copy and one Config can
// safely template many engines (the shard router instantiates one Engine
// per shard from a single Config value). Keep it that way: a slice,
// map, pointer or func field added here would silently alias state across
// engines sharing the template. If such a field ever becomes necessary it
// must be deep-copied in withDefaults, and TestConfigIsPureValue
// (config_test.go) must learn about it — the test fails the build on any
// reference-typed field it does not recognise.
type Config struct {
	// BufferPages is the shared DB buffer size in 8 KiB pages
	// (default 4096 = 32 MiB).
	BufferPages int
	// PartitionBufferBytes is the shared MV-PBT buffer limit
	// (default 4 MiB).
	PartitionBufferBytes int
	// Profile is the device latency profile (default ssd.IntelP3600).
	// Superseded by Device when that is set.
	Profile ssd.Profile
	// Device selects a zoo device (ssd.Zoo) by full spec: latency profile
	// plus mode semantics — ZNS append-only zones, cloud IOPS throttling.
	// The zero value defers to Profile; a zero Profile inside a non-zero
	// Device still defaults to ssd.IntelP3600. DeviceSpec is itself a pure
	// value (scalars and a name string), keeping the copy contract intact.
	Device ssd.DeviceSpec
	// EnableWAL turns on logical redo logging with per-commit flushes (see
	// internal/wal). Off by default: the paper's experiments run without
	// durability, like the paper's prototype.
	EnableWAL bool
	// GroupCommit batches concurrent durable commits into shared log
	// flushes (see GroupCommitConfig and DESIGN.md §11). Only meaningful
	// with EnableWAL; disabled by default, preserving per-commit flushes.
	GroupCommit GroupCommitConfig
	// BackgroundMaint runs partition eviction, merges, garbage sweeps and
	// LSM flush/compaction on a background maintenance service instead of
	// inline on the writer. Off by default: the synchronous mode is the
	// baseline the experiments compare against.
	BackgroundMaint bool
	// MaintWorkers sizes the maintenance worker pool (default 2).
	MaintWorkers int
	// MaintBytesPerSec caps background device writes via a token bucket
	// (0 = unthrottled).
	MaintBytesPerSec int64
	// WALCheckpointBytes triggers an automatic checkpoint (snapshot + log
	// truncation, see Engine.Checkpoint) once the current log generation
	// grows past this many bytes (0 = no automatic checkpoints).
	WALCheckpointBytes int64
	// DeviceCapacityBytes bounds the device space the engine may allocate
	// (0 = unbounded). Allocations beyond the budget fail with
	// storage.ErrNoSpace, and the watermarks below govern degradation.
	DeviceCapacityBytes int64
	// SpaceSoftBytes is the reclamation watermark: live bytes at or above
	// it trigger urgent reclamation (WAL truncation, GC, merges, vacuum).
	// Default 85% of DeviceCapacityBytes.
	SpaceSoftBytes int64
	// SpaceHardBytes is the degradation watermark: live bytes at or above
	// it flip the engine to read-only (writes fail with ErrReadOnly; reads
	// keep working) until reclamation brings usage back under
	// SpaceSoftBytes. Default 95% of DeviceCapacityBytes.
	SpaceHardBytes int64
}

func (c Config) withDefaults() Config {
	if c.BufferPages <= 0 {
		c.BufferPages = 4096
	}
	if c.PartitionBufferBytes <= 0 {
		c.PartitionBufferBytes = 4 << 20
	}
	zero := ssd.Profile{}
	if c.Profile == zero {
		c.Profile = ssd.IntelP3600
	}
	if c.Device == (ssd.DeviceSpec{}) {
		c.Device = ssd.DeviceSpec{Profile: c.Profile}
	} else if c.Device.Profile == zero {
		// A mode-only spec (e.g. constructed from a name lookup that kept
		// the default profile) still gets the configured latency table.
		c.Device.Profile = c.Profile
	}
	if c.DeviceCapacityBytes > 0 {
		if c.SpaceSoftBytes <= 0 {
			c.SpaceSoftBytes = c.DeviceCapacityBytes * 85 / 100
		}
		if c.SpaceHardBytes <= 0 {
			c.SpaceHardBytes = c.DeviceCapacityBytes * 95 / 100
		}
	}
	return c
}

// Engine owns the storage substrate shared by all tables.
type Engine struct {
	Clock *simclock.Clock
	Dev   *ssd.Device
	FM    *sfile.Manager
	Pool  *buffer.Pool
	Mgr   *txn.Manager
	PBuf  *part.PartitionBuffer
	// Maint is the background maintenance service, nil in synchronous mode.
	Maint *maint.Service

	// walMu orders log access against checkpointing: record appends and
	// flushes hold it shared, Checkpoint holds it exclusive while it swaps
	// log generations. Lock-order note: Checkpoint's quiescence precondition
	// (no active transactions) guarantees no thread holding a table mutex
	// can be waiting on walMu when the exclusive lock is taken.
	walMu        sync.RWMutex
	wal          *wal.Writer
	walFile      *sfile.File
	walMeta      *sfile.File // dual-slot checkpoint superblock
	walBaseBytes int64       // wal.Written() at the current generation's start
	ckptStats    CheckpointStats
	ckptErrs     atomic.Int64

	// gc is the group-commit batcher (nil unless Config.GroupCommit.Enabled
	// with EnableWAL). walCommits/walROCommits count durable commits that
	// appended a commit record vs read-only commits elided entirely.
	gc           *groupCommitter
	walCommits   atomic.Int64
	walROCommits atomic.Int64

	// In-doubt registry for cross-shard two-phase commit (twopc.go):
	// transactions that PREPARED durably and now await the coordinator's
	// decision. Their handles stay open (InProgress), keeping their
	// versions invisible through the ordinary visibility check.
	inDoubtMu      sync.Mutex
	inDoubt        map[txn.TxID]*preparedTx
	prepares       atomic.Int64
	resolveCommits atomic.Int64
	resolveAborts  atomic.Int64

	// Checkpoint crash hooks (tests only): called with walMu held at the
	// three interesting instants — new generation durable but superblock
	// not yet written; superblock written but old generation not yet freed;
	// old generation freed but nothing appended to the new one yet.
	ckptBeforeSuper   func()
	ckptAfterSuper    func()
	ckptAfterTruncate func()

	cfg Config

	tablesMu sync.Mutex
	tables   map[string]*Table
	kvs      map[string]*MVPBTKV // durable KV stores (WAL-logged, checkpointed)

	// Space governor state (see governor.go).
	readOnly       atomic.Bool
	aboveSoft      atomic.Bool // edge detector for the soft watermark
	roEntries      atomic.Int64
	roExits        atomic.Int64
	reclaims       atomic.Int64
	reclaimPending atomic.Bool // synchronous mode: pass due at next commit/abort

	closeMu  sync.Mutex
	closed   bool
	closeErr error
	closers  []func() error
}

// NewEngine builds an engine from cfg.
func NewEngine(cfg Config) *Engine {
	cfg = cfg.withDefaults()
	clk := simclock.New()
	dev := ssd.NewWithSpec(clk, cfg.Device)
	e := &Engine{
		Clock:  clk,
		Dev:    dev,
		FM:     sfile.NewManager(dev),
		Pool:   buffer.New(cfg.BufferPages),
		Mgr:    txn.NewManager(),
		PBuf:   part.NewPartitionBuffer(cfg.PartitionBufferBytes),
		cfg:     cfg,
		tables:  map[string]*Table{},
		kvs:     map[string]*MVPBTKV{},
		inDoubt: map[txn.TxID]*preparedTx{},
	}
	if cfg.EnableWAL {
		e.walFile = e.FM.Create("wal", sfile.ClassMeta)
		e.wal = wal.NewWriter(e.walFile)
		e.walMeta = e.FM.Create("walmeta", sfile.ClassMeta)
		if cfg.GroupCommit.Enabled {
			e.gc = newGroupCommitter(e, cfg.GroupCommit)
		}
	}
	if cfg.DeviceCapacityBytes > 0 {
		e.FM.SetCapacity(cfg.DeviceCapacityBytes)
		e.FM.SetSpaceNotifier(e.onSpace)
	}
	if cfg.BackgroundMaint {
		e.Maint = maint.New(maint.Config{
			Workers:      cfg.MaintWorkers,
			BytesPerSec:  cfg.MaintBytesPerSec,
			WrittenBytes: func() int64 { return dev.Stats().BytesWritten },
		})
		// Partition-buffer pressure drives eviction asynchronously: at the
		// low watermark the writer submits this job and carries on; only at
		// the high watermark does it stall (briefly) for eviction to catch up.
		e.PBuf.SetNotifier(func() {
			e.Maint.Submit(maint.Evict, "pbuf", e.PBuf.EvictToLow)
		})
	}
	return e
}

// wireMaint installs the background merge and GC triggers on an MV-PBT.
// No-op in synchronous mode (the tree then merges and sweeps inline).
func (e *Engine) wireMaint(name string, t *mvpbt.Tree) {
	if e.Maint == nil {
		return
	}
	t.SetMaintHooks(
		func() {
			e.Maint.Submit(maint.Merge, name, func() error {
				if !t.NeedsMerge() {
					return nil
				}
				return t.MergePartitions()
			})
		},
		func() {
			e.Maint.Submit(maint.GC, name, func() error {
				t.SweepPN()
				return nil
			})
		},
	)
}

// registerKV records a durable KV store for WAL recovery and checkpoint
// snapshots. Names share a namespace with tables: a WAL row record's Table
// field must resolve to exactly one replay target.
func (e *Engine) registerKV(kv *MVPBTKV) error {
	e.tablesMu.Lock()
	defer e.tablesMu.Unlock()
	if _, dup := e.kvs[kv.name]; dup {
		return fmt.Errorf("db: duplicate durable KV %q", kv.name)
	}
	if _, dup := e.tables[kv.name]; dup {
		return fmt.Errorf("db: durable KV %q collides with a table of that name", kv.name)
	}
	e.kvs[kv.name] = kv
	return nil
}

// AddCloser registers fn to run during Close, after maintenance drains.
// Closers run in registration order.
func (e *Engine) AddCloser(fn func() error) {
	e.closeMu.Lock()
	e.closers = append(e.closers, fn)
	e.closeMu.Unlock()
}

// Close shuts the engine down cleanly: the maintenance service drains its
// queue and stops, registered closers run (flushing LSM memtables), and the
// WAL tail is flushed to the device. Idempotent; returns the first error.
func (e *Engine) Close() error {
	e.closeMu.Lock()
	defer e.closeMu.Unlock()
	if e.closed {
		return e.closeErr
	}
	e.closed = true
	var first error
	if e.gc != nil {
		// Fence the commit pipeline first: already-enqueued committers are
		// drained (their leaders flush as usual), later arrivals fail with
		// ErrClosed instead of racing the final flush below.
		e.gc.close()
	}
	if e.Maint != nil {
		if err := e.Maint.Close(); err != nil && first == nil {
			first = err
		}
	}
	for _, fn := range e.closers {
		if err := fn(); err != nil && first == nil {
			first = err
		}
	}
	if e.wal != nil {
		e.walMu.RLock()
		err := e.wal.Flush()
		e.walMu.RUnlock()
		if err != nil && first == nil {
			first = err
		}
	}
	e.closeErr = first
	return first
}

// Begin starts a transaction (carrying context.Background — see BeginCtx).
func (e *Engine) Begin() *txn.Tx {
	return e.BeginCtx(context.Background())
}

// BeginCtx starts a transaction carrying ctx. Operations issued through
// the transaction — writes that hit a partition-buffer stall, scans, I/O
// retries — consult the context at their blocking points, so a deadline or
// cancellation bounds how long any single call can block. The context does
// not abort the transaction by itself; the caller still Commits or Aborts.
func (e *Engine) BeginCtx(ctx context.Context) *txn.Tx {
	// The transaction's OpBegin record is emitted LAZILY, together with its
	// first row operation (Table.logOp): a read-only transaction therefore
	// never touches the log — no begin record, no commit record, no flush.
	return e.Mgr.BeginCtx(ctx)
}

// Commit commits tx. With logging enabled the commit record and all of the
// transaction's row operations are flushed to the device first — the
// durability point. A persistent log-flush failure panics: the transaction
// can be neither acknowledged nor cleanly rolled back at this point, so
// callers that must survive device faults use CommitDurable instead.
func (e *Engine) Commit(tx *txn.Tx) {
	if err := e.CommitDurable(tx); err != nil {
		panic("db: commit log flush failed: " + err.Error())
	}
}

// CommitDurable commits tx, returning the WAL flush error instead of
// panicking. On error the transaction is NOT committed in memory and its
// durability is IN DOUBT: depending on where the flush tore, the commit
// record may or may not have reached the device, so after a restart
// recovery may legitimately resurface the transaction as committed. The
// caller decides between retrying the flush (the log writer resumes at the
// failed page) and crashing.
//
// A read-only transaction (no logged row operations) commits without
// touching the log at all. With Config.GroupCommit the flush is performed
// by a batch leader on behalf of many committers (see DESIGN.md §11); a
// commit arriving after Close has fenced the batcher fails with ErrClosed.
func (e *Engine) CommitDurable(tx *txn.Tx) error {
	if e.wal != nil && tx.WALLogged() {
		if e.gc != nil {
			if err := e.gc.commit(tx); err != nil {
				return err
			}
		} else {
			e.walMu.RLock()
			e.wal.Append(&wal.Record{Op: wal.OpCommit, TxID: uint64(tx.ID)})
			err := e.wal.Flush()
			e.walMu.RUnlock()
			if err != nil {
				return err
			}
		}
		e.walCommits.Add(1)
	} else if e.wal != nil {
		e.walROCommits.Add(1)
	}
	e.Mgr.Commit(tx)
	e.maybeAutoCheckpoint()
	e.maybeReclaim()
	return nil
}

// Abort aborts tx. A transaction that never logged needs no abort record.
func (e *Engine) Abort(tx *txn.Tx) {
	if e.wal != nil && tx.WALLogged() {
		e.walMu.RLock()
		e.wal.Append(&wal.Record{Op: wal.OpAbort, TxID: uint64(tx.ID)})
		e.walMu.RUnlock()
	}
	e.Mgr.Abort(tx)
	e.maybeReclaim()
}

// readWholeFile concatenates a file's pages (the WAL image). Transient
// read faults are retried a bounded number of times per page; a page that
// stays unreadable truncates the image there (recovery semantics: the log
// beyond an unreadable page is unreachable anyway, since replay stops at
// the first gap).
func readWholeFile(f *sfile.File) []byte {
	n := f.NumPages()
	out := make([]byte, 0, int(n)*storage.PageSize)
	buf := make([]byte, storage.PageSize)
	for i := uint64(0); i < n; i++ {
		var err error
		for attempt := 0; attempt < 3; attempt++ {
			if err = f.ReadPage(i, buf); err == nil {
				break
			}
		}
		if err != nil {
			break
		}
		out = append(out, buf...)
	}
	return out
}
