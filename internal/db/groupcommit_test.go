package db

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"mvpbt/internal/sfile"
	"mvpbt/internal/ssd"
	"mvpbt/internal/storage"
	"mvpbt/internal/txn"
	"mvpbt/internal/wal"
)

// groupTable is walTable with the commit batcher enabled. MaxDelay 0 keeps
// single-threaded tests deterministic (every commit is a batch of one
// through the leader path); concurrency tests override it.
func groupTable(t *testing.T, delay time.Duration) (*Engine, *Table, *Index) {
	t.Helper()
	e := NewEngine(Config{
		BufferPages: 1024, PartitionBufferBytes: 1 << 22, EnableWAL: true,
		GroupCommit: GroupCommitConfig{Enabled: true, MaxDelay: delay},
	})
	tbl, err := e.NewTable("accounts", HeapSIAS, IndexDef{
		Name: "pk", Kind: IdxMVPBT, Unique: true, BloomBits: 10, Extract: keyExtract,
	})
	if err != nil {
		t.Fatal(err)
	}
	return e, tbl, tbl.Indexes()[0]
}

// TestReadOnlyCommitLeavesWALByteIdentical: with lazy begin records a
// transaction that never logs a row operation must leave the log image
// byte-for-byte unchanged — no begin, no commit, no abort record, no flush.
func TestReadOnlyCommitLeavesWALByteIdentical(t *testing.T) {
	e, tbl, ix := walTable(t)
	tx := e.Begin()
	tbl.Insert(tx, row("a", "1"))
	e.Commit(tx)

	before := e.LogImage()
	flushes := e.WALStatsSnapshot().Flushes
	for i := 0; i < 5; i++ {
		r := e.Begin()
		if _, err := tbl.LookupOne(r, ix, []byte("a"), true); err != nil {
			t.Fatal(err)
		}
		if err := e.CommitDurable(r); err != nil {
			t.Fatal(err)
		}
	}
	ab := e.Begin()
	if _, err := tbl.LookupOne(ab, ix, []byte("a"), true); err != nil {
		t.Fatal(err)
	}
	e.Abort(ab)

	if !bytes.Equal(before, e.LogImage()) {
		t.Fatal("read-only transactions changed the log image")
	}
	s := e.WALStatsSnapshot()
	if s.Flushes != flushes {
		t.Fatalf("read-only commits flushed the log: %d -> %d", flushes, s.Flushes)
	}
	if s.ReadOnlyCommits != 5 {
		t.Fatalf("ReadOnlyCommits = %d, want 5", s.ReadOnlyCommits)
	}
}

// TestLazyBeginRecordPlacement checks the log grammar under lazy begins:
// each logged transaction's OpBegin appears immediately before its first
// row record even when transactions interleave, and the whole log stays
// recoverable.
func TestLazyBeginRecordPlacement(t *testing.T) {
	e, tbl, _ := walTable(t)
	t1 := e.Begin()
	t2 := e.Begin()
	tbl.Insert(t1, row("a", "1")) // t1's begin must precede this record
	tbl.Insert(t2, row("b", "2")) // t2's begin emitted here, after t1's op
	tbl.Insert(t1, row("c", "3")) // no second begin for t1
	e.Commit(t2)
	e.Commit(t1)

	type pr struct {
		op wal.Op
		id uint64
	}
	var p []pr
	r := wal.NewReaderFromBytes(e.LogImage())
	for {
		rec, ok := r.Next()
		if !ok {
			break
		}
		p = append(p, pr{rec.Op, rec.TxID})
	}
	// Expected sequence: begin(t1) insert(t1) begin(t2) insert(t2)
	// insert(t1) commit(t2) commit(t1) — ids taken from the begin records
	// since they are assigned dynamically.
	if len(p) != 7 {
		t.Fatalf("log has %d records, want 7: %v", len(p), p)
	}
	id1, id2 := p[0].id, p[2].id
	if id1 == id2 {
		t.Fatalf("begin records share an id: %v", p)
	}
	wantSeq := []pr{
		{wal.OpBegin, id1}, {wal.OpInsert, id1},
		{wal.OpBegin, id2}, {wal.OpInsert, id2},
		{wal.OpInsert, id1},
		{wal.OpCommit, id2}, {wal.OpCommit, id1},
	}
	for i, w := range wantSeq {
		if p[i] != w {
			t.Fatalf("record %d = %v, want %v (full log %v)", i, p[i], w, p)
		}
	}

	// The interleaved lazy-begin log must recover to the committed state.
	re, rtbl, rix, applied := recoverInto(t, e.LogImage())
	if applied != 2 {
		t.Fatalf("applied = %d, want 2", applied)
	}
	state := snapshotState(t, re, rtbl, rix)
	if state["a"] != "1" || state["b"] != "2" || state["c"] != "3" {
		t.Fatalf("recovered state %v", state)
	}
}

// TestGroupCommitConcurrentDurable runs many concurrent committers through
// the batcher and checks that every commit is durable (recoverable), that
// flushes were actually shared, and that the batcher's counters add up.
func TestGroupCommitConcurrentDurable(t *testing.T) {
	e, tbl, _ := groupTable(t, 200*time.Microsecond)
	const clients, perClient = 8, 40
	var wg sync.WaitGroup
	var failed atomic.Int32
	for g := 0; g < clients; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perClient; i++ {
				tx := e.Begin()
				if _, _, err := tbl.Insert(tx, row(fmt.Sprintf("k%02d-%03d", g, i), "v")); err != nil {
					t.Error(err)
					failed.Add(1)
					e.Abort(tx)
					return
				}
				if err := e.CommitDurable(tx); err != nil {
					t.Error(err)
					failed.Add(1)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	if failed.Load() != 0 {
		t.Fatal("commit errors")
	}
	s := e.WALStatsSnapshot()
	if s.Group.Commits != clients*perClient {
		t.Fatalf("batcher commits = %d, want %d", s.Group.Commits, clients*perClient)
	}
	if s.Group.Batches <= 0 || s.Group.Batches > s.Group.Commits {
		t.Fatalf("batches = %d out of range (commits %d)", s.Group.Batches, s.Group.Commits)
	}
	if s.Group.MaxBatched < 1 {
		t.Fatalf("max batched = %d", s.Group.MaxBatched)
	}

	re, rtbl, rix, applied := recoverInto(t, e.LogImage())
	if applied != clients*perClient {
		t.Fatalf("recovered %d transactions, want %d", applied, clients*perClient)
	}
	state := snapshotState(t, re, rtbl, rix)
	if len(state) != clients*perClient {
		t.Fatalf("recovered %d rows, want %d", len(state), clients*perClient)
	}
}

// TestGroupCommitCloseRace races committers against Close: every
// CommitDurable must return either nil (the commit is durable) or ErrClosed
// (the commit never happened), never anything in between. Run under -race
// this also exercises the close fence. Acknowledged commits are then
// verified durable by recovery.
func TestGroupCommitCloseRace(t *testing.T) {
	e, tbl, _ := groupTable(t, 0)
	const clients = 6
	var (
		wg    sync.WaitGroup
		acked [clients][]string
	)
	start := make(chan struct{})
	for g := 0; g < clients; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			<-start
			for i := 0; ; i++ {
				key := fmt.Sprintf("c%02d-%04d", g, i)
				tx := e.Begin()
				if _, _, err := tbl.Insert(tx, row(key, "v")); err != nil {
					return // engine shutting down under us: fine
				}
				err := e.CommitDurable(tx)
				switch {
				case err == nil:
					acked[g] = append(acked[g], key)
				case errors.Is(err, ErrClosed):
					return
				default:
					t.Errorf("client %d: unexpected commit error %v", g, err)
					return
				}
			}
		}(g)
	}
	image := e.LogImage() // pre-close fallback; replaced after Close below
	close(start)
	time.Sleep(2 * time.Millisecond) // let commits pile into the batcher
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	image = e.LogImage()

	re, rtbl, rix, _ := recoverInto(t, image)
	state := snapshotState(t, re, rtbl, rix)
	for g := range acked {
		for _, key := range acked[g] {
			if _, ok := state[key]; !ok {
				t.Fatalf("acknowledged commit %s not durable after Close", key)
			}
		}
	}
}

// TestCommitDurableAfterCloseErrClosed: a committer arriving strictly after
// Close must get the typed error and must not have committed anything.
func TestCommitDurableAfterCloseErrClosed(t *testing.T) {
	e, tbl, _ := groupTable(t, 0)
	tx := e.Begin()
	if _, _, err := tbl.Insert(tx, row("late", "v")); err != nil {
		t.Fatal(err)
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	if err := e.CommitDurable(tx); !errors.Is(err, ErrClosed) {
		t.Fatalf("commit after close: %v, want ErrClosed", err)
	}
	re, rtbl, rix, _ := recoverInto(t, e.LogImage())
	if state := snapshotState(t, re, rtbl, rix); len(state) != 0 {
		t.Fatalf("fenced commit leaked into the log: %v", state)
	}
}

// TestCommitBatchDurableSingleFlush: a batch of writers plus a read-only
// transaction commits under exactly one flush, and all of it recovers.
func TestCommitBatchDurableSingleFlush(t *testing.T) {
	e, tbl, ix := walTable(t)
	t1 := e.Begin()
	tbl.Insert(t1, row("a", "1"))
	t2 := e.Begin()
	tbl.Insert(t2, row("b", "2"))
	ro := e.Begin()
	if _, err := tbl.LookupOne(ro, ix, []byte("a"), true); err != nil {
		t.Fatal(err)
	}

	flushes := e.WALStatsSnapshot().Flushes
	if err := e.CommitBatchDurable([]*txn.Tx{t1, t2, ro}); err != nil {
		t.Fatal(err)
	}
	s := e.WALStatsSnapshot()
	if s.Flushes != flushes+1 {
		t.Fatalf("flushes %d -> %d, want exactly one more", flushes, s.Flushes)
	}
	if s.ReadOnlyCommits != 1 {
		t.Fatalf("ReadOnlyCommits = %d, want 1", s.ReadOnlyCommits)
	}
	re, rtbl, rix, applied := recoverInto(t, e.LogImage())
	if applied != 2 {
		t.Fatalf("applied %d, want 2", applied)
	}
	state := snapshotState(t, re, rtbl, rix)
	if state["a"] != "1" || state["b"] != "2" {
		t.Fatalf("recovered %v", state)
	}
}

// TestCommitBatchDurableFlushError: when the shared flush fails, NONE of
// the batch is committed in memory (all in doubt), matching CommitDurable's
// contract.
func TestCommitBatchDurableFlushError(t *testing.T) {
	e, tbl, ix := walTable(t)
	t1 := e.Begin()
	tbl.Insert(t1, row("a", "1"))
	t2 := e.Begin()
	tbl.Insert(t2, row("b", "2"))

	id := e.Dev.ArmFault(ssd.FaultRule{
		Kind: ssd.FaultWriteErr, Class: int(sfile.ClassMeta), Sticky: true,
	})
	err := e.CommitBatchDurable([]*txn.Tx{t1, t2})
	if !errors.Is(err, storage.ErrIOFault) {
		t.Fatalf("batch commit with sticky WAL fault: %v", err)
	}
	e.Dev.DisarmFault(id)

	// Neither transaction may be visible to a fresh snapshot.
	r := e.Begin()
	defer e.Commit(r)
	for _, k := range []string{"a", "b"} {
		if got, err := tbl.LookupOne(r, ix, []byte(k), true); err != nil || got != nil {
			t.Fatalf("in-doubt commit visible in memory: key %s got=%v err=%v", k, got, err)
		}
	}
}
