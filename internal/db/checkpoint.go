package db

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"sort"

	"mvpbt/internal/page"
	"mvpbt/internal/sfile"
	"mvpbt/internal/storage"
	"mvpbt/internal/wal"
)

// WAL checkpointing (log truncation). The logical redo log grows without
// bound — every committed row operation stays in it forever, and recovery
// replays all of it. A checkpoint bounds both: it writes a snapshot of the
// committed visible state as a NEW log generation (CkptBegin / one CkptRow
// per row / CkptEnd), commits the switch through a dual-slot superblock,
// and frees the old generation's device pages. Recovery then replays
// snapshot + suffix instead of history-since-birth, and the device space
// held by dead log prefix is reclaimed — the reclamation lever the space
// governor pulls first when the device fills up.
//
// Crash safety is the whole game, and it reduces to one atomic step: the
// superblock write. The superblock is a 2-page file ("walmeta"); slot
// seq%2 holds {magic, seq, fileID} under a page checksum. A checkpoint
// writes the complete new generation FIRST, then its superblock slot, then
// frees the old generation. A crash before the superblock write leaves the
// old slot authoritative (old log intact, new gen is garbage). A torn
// superblock write fails the slot's checksum, so the other slot — the old
// generation — wins. A crash after the superblock write but before the
// truncation leaves both generations readable and the new slot wins. Only
// after the old generation's pages are freed does the new one become the
// sole copy, and by then it is durably complete.

// ErrCheckpointBusy is returned by Checkpoint when transactions are active.
// A checkpoint snapshots the committed state with no writer in flight —
// callers retry at a quiescent point (the engine's reclamation path does).
var ErrCheckpointBusy = errors.New("db: checkpoint requires a quiescent engine (active transactions)")

// superblock layout inside a page's client area (36 bytes available):
// magic(8) | seq(8) | fileID(8). fileID is a storage.FileID widened to 64
// bits. Pages 0 and 1 of "walmeta" are the two slots; a checkpoint with
// sequence number s writes slot s%2, so the previous superblock is never
// overwritten by the write that supersedes it.
const superMagic = 0x4d56_5042_5457_414c // "MVPBTWAL"

func encodeSuper(buf []byte, seq uint64, id storage.FileID) {
	p := page.Wrap(buf)
	p.Init()
	c := p.Client()
	binary.LittleEndian.PutUint64(c[0:8], superMagic)
	binary.LittleEndian.PutUint64(c[8:16], seq)
	binary.LittleEndian.PutUint64(c[16:24], uint64(id))
	page.StampChecksum(buf)
}

// decodeSuper validates one superblock page image. ok is false for a torn
// or never-written slot.
func decodeSuper(buf []byte) (seq uint64, id storage.FileID, ok bool) {
	if !page.VerifyChecksum(buf) {
		return 0, 0, false
	}
	c := page.Wrap(buf).Client()
	if binary.LittleEndian.Uint64(c[0:8]) != superMagic {
		return 0, 0, false
	}
	return binary.LittleEndian.Uint64(c[8:16]), storage.FileID(binary.LittleEndian.Uint64(c[16:24])), true
}

// writePageRetry writes one page with bounded retries (transient write
// faults are the device's normal behaviour under the fault campaigns).
func writePageRetry(f *sfile.File, pageNo uint64, buf []byte) error {
	var err error
	for attempt := 0; attempt < 3; attempt++ {
		if err = f.WritePage(pageNo, buf); err == nil {
			return nil
		}
	}
	return err
}

// readPageRetry reads one page with bounded retries.
func readPageRetry(f *sfile.File, pageNo uint64, buf []byte) error {
	var err error
	for attempt := 0; attempt < 3; attempt++ {
		if err = f.ReadPage(pageNo, buf); err == nil {
			return nil
		}
	}
	return err
}

// CheckpointStats reports the effect of the last completed checkpoint.
type CheckpointStats struct {
	Count          int64 // completed checkpoints
	Seq            uint64
	WALBytesBefore int64 // device bytes held by the log before the last checkpoint
	WALBytesAfter  int64 // device bytes held by the log after it
}

// CheckpointInfo returns checkpoint statistics.
func (e *Engine) CheckpointInfo() CheckpointStats {
	e.walMu.RLock()
	defer e.walMu.RUnlock()
	return e.ckptStats
}

// WALDeviceBytes returns the device bytes currently held by the log
// (current generation plus the superblock file).
func (e *Engine) WALDeviceBytes() int64 {
	e.walMu.RLock()
	defer e.walMu.RUnlock()
	var n int64
	if e.walFile != nil {
		n += int64(e.walFile.NumPages()) * storage.PageSize
	}
	if e.walMeta != nil {
		n += int64(e.walMeta.NumPages()) * storage.PageSize
	}
	return n
}

// Checkpoint writes a snapshot of the committed visible state as a new log
// generation, switches the superblock to it, and frees the old generation's
// device pages. It requires a quiescent engine: any active transaction makes
// it return ErrCheckpointBusy (the snapshot must not interleave with
// writers, and the precondition also rules out lock-order inversions —
// every in-flight operation holding a table lock belongs to an active
// transaction, so none can be waiting on the log lock we hold).
//
// On any failure before the superblock write the old log remains
// authoritative and the partially written generation is freed — the
// checkpoint simply did not happen.
func (e *Engine) Checkpoint() error {
	e.walMu.Lock()
	defer e.walMu.Unlock()
	if e.wal == nil {
		return fmt.Errorf("db: Checkpoint on an engine without EnableWAL")
	}
	if e.Mgr.ActiveCount() != 0 {
		return ErrCheckpointBusy
	}
	bytesBefore := int64(e.walFile.NumPages()) * storage.PageSize

	// Superblock file: two pages, allocated on first use.
	if e.walMeta.NumPages() < 2 {
		if _, err := e.walMeta.AllocRun(2); err != nil {
			return fmt.Errorf("db: checkpoint: superblock alloc: %w", err)
		}
	}

	seq := e.ckptStats.Seq + 1
	newFile := e.FM.Create(fmt.Sprintf("wal.%d", seq), sfile.ClassMeta)
	newW := wal.NewWriter(newFile)
	abandon := func() {
		if n := newFile.NumPages(); n > 0 {
			newFile.FreeRun(0, int(n))
		}
	}

	// Snapshot every table's committed visible rows under a read snapshot.
	// The transaction is synthetic: opened directly on the manager so no
	// begin/abort records pollute either log generation. Tables stream in
	// sorted name order and each scan follows primary-key order, so the
	// snapshot bytes are a deterministic function of the committed state.
	tx := e.Mgr.Begin()
	defer e.Mgr.Abort(tx)
	newW.Append(&wal.Record{Op: wal.OpCkptBegin, TxID: seq})
	e.tablesMu.Lock()
	names := make([]string, 0, len(e.tables))
	byName := make(map[string]*Table, len(e.tables))
	for name, t := range e.tables {
		names = append(names, name)
		byName[name] = t
	}
	kvNames := make([]string, 0, len(e.kvs))
	kvByName := make(map[string]*MVPBTKV, len(e.kvs))
	for name, kv := range e.kvs {
		kvNames = append(kvNames, name)
		kvByName[name] = kv
	}
	e.tablesMu.Unlock()
	sort.Strings(names)
	sort.Strings(kvNames)
	var rows uint64
	for _, name := range names {
		t := byName[name]
		err := t.Scan(tx, t.indexes[0], nil, nil, true, func(r RowRef) bool {
			newW.Append(&wal.Record{Op: wal.OpCkptRow, TxID: seq, Table: name, Key: r.Key, Row: r.Row})
			rows++
			return true
		})
		if err != nil {
			abandon()
			return fmt.Errorf("db: checkpoint: snapshotting %q: %w", name, err)
		}
	}
	// Durable KV stores stream their visible pairs into the same snapshot,
	// keyed by the store's name (replay routes CkptRow records to the store).
	for _, name := range kvNames {
		kv := kvByName[name]
		err := kv.ScanTx(tx, nil, math.MaxInt, func(k, v []byte) bool {
			newW.Append(&wal.Record{Op: wal.OpCkptRow, TxID: seq, Table: name, Key: k, Row: v})
			rows++
			return true
		})
		if err != nil {
			abandon()
			return fmt.Errorf("db: checkpoint: snapshotting KV %q: %w", name, err)
		}
	}
	newW.Append(&wal.Record{Op: wal.OpCkptEnd, TxID: rows})
	if err := newW.Flush(); err != nil {
		abandon()
		return fmt.Errorf("db: checkpoint: %w", err)
	}
	if e.ckptBeforeSuper != nil {
		e.ckptBeforeSuper()
	}

	// Commit point: the superblock slot write. Before it, the old log is
	// authoritative; after it, the new generation is.
	buf := make([]byte, storage.PageSize)
	encodeSuper(buf, seq, newFile.ID())
	if err := writePageRetry(e.walMeta, seq%2, buf); err != nil {
		abandon()
		return fmt.Errorf("db: checkpoint: superblock write: %w", err)
	}
	if e.ckptAfterSuper != nil {
		e.ckptAfterSuper()
	}

	// Truncation: the old generation's pages go back to the device. Failure
	// past the commit point is not an error for the caller — the checkpoint
	// IS complete; at worst the old pages leak until the next checkpoint.
	oldFile := e.walFile
	if n := oldFile.NumPages(); n > 0 {
		oldFile.FreeRun(0, int(n))
	}
	e.wal, e.walFile = newW, newFile
	e.walBaseBytes = newW.Written()
	e.ckptStats.Count++
	e.ckptStats.Seq = seq
	e.ckptStats.WALBytesBefore = bytesBefore
	e.ckptStats.WALBytesAfter = int64(newFile.NumPages())*storage.PageSize + int64(e.walMeta.NumPages())*storage.PageSize
	if e.ckptAfterTruncate != nil {
		e.ckptAfterTruncate()
	}
	return nil
}

// maybeAutoCheckpoint runs a checkpoint when the current log generation has
// grown past the configured threshold. Called after commit, outside all
// locks; a busy engine (other active transactions) just means the next
// commit tries again.
func (e *Engine) maybeAutoCheckpoint() {
	if e.cfg.WALCheckpointBytes <= 0 || e.wal == nil {
		return
	}
	e.walMu.RLock()
	grown := e.wal.Written() - e.walBaseBytes
	e.walMu.RUnlock()
	if grown < e.cfg.WALCheckpointBytes {
		return
	}
	if err := e.Checkpoint(); err != nil && !errors.Is(err, ErrCheckpointBusy) {
		// Checkpointing is an optimization; the old log stays authoritative
		// on failure. Record the error for diagnostics and move on.
		e.ckptErrs.Add(1)
	}
}

// currentLogFile resolves the authoritative log generation from the
// superblock: the valid slot with the highest sequence number wins; with no
// valid slot (no checkpoint ever completed) the original "wal" file is the
// log. Unreadable superblock pages are treated as invalid slots — the
// other slot, or the fallback, still yields a complete log.
func (e *Engine) currentLogFile() *sfile.File {
	if e.walMeta == nil || e.walMeta.NumPages() < 2 {
		return e.walFile
	}
	best := e.walFile
	var bestSeq uint64
	buf := make([]byte, storage.PageSize)
	for slot := uint64(0); slot < 2; slot++ {
		if err := readPageRetry(e.walMeta, slot, buf); err != nil {
			continue
		}
		seq, id, ok := decodeSuper(buf)
		if !ok || seq < bestSeq {
			continue
		}
		if f := e.FM.Lookup(id); f != nil {
			best, bestSeq = f, seq
		}
	}
	return best
}
