package db

import (
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"

	"mvpbt/internal/storage"
)

// churnUntilReadOnly updates a small key set until the governor degrades the
// engine (history and dead versions pile up while the live state stays
// small, so reclamation has plenty to harvest). Returns the number of
// committed update transactions.
func churnUntilReadOnly(t *testing.T, e *Engine, tbl *Table, ix *Index, keys, maxTx int) int {
	t.Helper()
	n := 0
	for ; n < maxTx; n++ {
		if e.ReadOnly() {
			return n
		}
		key := fmt.Sprintf("k%04d", n%keys)
		tx := e.Begin()
		cur, err := tbl.LookupOne(tx, ix, []byte(key), true)
		if err != nil {
			t.Fatalf("lookup during churn: %v", err)
		}
		if cur == nil {
			t.Fatalf("key %s vanished during churn", key)
		}
		// Fat payloads: each update appends a new heap version AND a log
		// record, so live bytes climb quickly toward the watermarks.
		val := fmt.Sprintf("u%08d-%s", n, strings.Repeat("x", 240))
		if _, err := tbl.Update(tx, *cur, row(key, val)); err != nil {
			e.Abort(tx)
			if errors.Is(err, ErrReadOnly) || errors.Is(err, storage.ErrNoSpace) {
				return n
			}
			t.Fatalf("update during churn: %v", err)
		}
		if err := e.CommitDurable(tx); err != nil {
			t.Fatalf("commit during churn: %v", err)
		}
	}
	t.Fatalf("engine never degraded after %d update transactions (live=%d)", maxTx, e.FM.LiveBytes())
	return n
}

func TestGovernorDegradesAndRecoversSync(t *testing.T) {
	e, tbl, ix := walTableKind(t, HeapSIAS, Config{
		DeviceCapacityBytes: 16 << 20,
		SpaceSoftBytes:      3 << 20,
		SpaceHardBytes:      4 << 20,
	})
	insertN(t, e, tbl, 0, 50)
	// A long-running reader pins the GC horizon and keeps the checkpoint
	// busy, so the reclamation passes the soft watermark triggers cannot
	// free anything — churn is guaranteed to push the engine to read-only.
	reader := e.Begin()
	churnUntilReadOnly(t, e, tbl, ix, 50, 20000)

	// Degraded: row writes fail fast, reads still serve the committed state.
	tx := e.Begin()
	if _, _, err := tbl.Insert(tx, row("nope", "x")); !errors.Is(err, ErrReadOnly) {
		t.Fatalf("insert while degraded: got %v, want ErrReadOnly", err)
	}
	n, err := tbl.Count(tx, ix, nil, nil)
	if err != nil || n != 50 {
		t.Fatalf("read while degraded: count=%d err=%v, want 50 rows", n, err)
	}
	e.Abort(tx)
	st := e.SpaceInfo()
	if !st.ReadOnly || st.ROEntries != 1 {
		t.Fatalf("space state wrong while degraded: %+v", st)
	}

	// Ending the reader unpins the horizon; its abort boundary retries
	// reclamation, which can now checkpoint the churn history out of the
	// WAL and vacuum the dead heap extents. The engine re-opens by itself.
	e.Abort(reader)
	st = e.SpaceInfo()
	if st.ReadOnly {
		t.Fatalf("engine still read-only after reclamation: %+v", st)
	}
	if st.ROExits != 1 || st.Reclaims == 0 {
		t.Fatalf("recovery counters wrong: %+v", st)
	}
	if st.Live >= st.Soft {
		t.Fatalf("reclamation left live=%d above soft=%d", st.Live, st.Soft)
	}

	// Writes resume and the state is still correct.
	insertN(t, e, tbl, 50, 55)
	tx = e.Begin()
	defer e.Abort(tx)
	if n, err := tbl.Count(tx, ix, nil, nil); err != nil || n != 55 {
		t.Fatalf("post-recovery count=%d err=%v, want 55", n, err)
	}
}

func TestGovernorLateENOSPCFlipsReadOnly(t *testing.T) {
	// Watermarks pinned at the capacity itself: the allocator's ErrNoSpace
	// fires before any watermark does, exercising the late-failure path.
	e := NewEngine(Config{
		BufferPages: 1024, PartitionBufferBytes: 1 << 22,
		DeviceCapacityBytes: 2 << 20,
		SpaceSoftBytes:      2 << 20,
		SpaceHardBytes:      2 << 20,
	})
	tbl, err := e.NewTable("t", HeapSIAS, IndexDef{
		Name: "pk", Kind: IdxMVPBT, Unique: true, BloomBits: 10, Extract: keyExtract,
	})
	if err != nil {
		t.Fatal(err)
	}
	var sawNoSpace bool
	for i := 0; i < 100000; i++ {
		tx := e.Begin()
		_, _, err := tbl.Insert(tx, row(fmt.Sprintf("k%06d", i), "payload-payload-payload"))
		if err != nil {
			e.Abort(tx)
			if errors.Is(err, storage.ErrNoSpace) {
				sawNoSpace = true
				break
			}
			if errors.Is(err, ErrReadOnly) {
				break
			}
			t.Fatalf("unexpected insert error: %v", err)
		}
		e.Commit(tx)
	}
	if !sawNoSpace && !e.ReadOnly() {
		t.Fatal("device never filled")
	}
	if !e.ReadOnly() {
		t.Fatal("ErrNoSpace did not degrade the engine to read-only")
	}
	tx := e.Begin()
	defer e.Abort(tx)
	if _, _, err := tbl.Insert(tx, row("x", "y")); !errors.Is(err, ErrReadOnly) {
		t.Fatalf("write after degradation: got %v, want ErrReadOnly", err)
	}
}

func TestGovernorBackgroundUrgentReclaim(t *testing.T) {
	e, tbl, ix := walTableKind(t, HeapSIAS, Config{
		DeviceCapacityBytes: 16 << 20,
		SpaceSoftBytes:      3 << 20,
		SpaceHardBytes:      4 << 20,
		BackgroundMaint:     true,
		// Starve the normal lane so only the urgent lane can possibly keep
		// up — reclamation must not sit behind the rate limiter.
		MaintBytesPerSec: 1,
	})
	defer e.Close()
	insertN(t, e, tbl, 0, 50)
	churnUntilReadOnly(t, e, tbl, ix, 50, 20000)

	deadline := time.Now().Add(5 * time.Second)
	for e.ReadOnly() && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	st := e.SpaceInfo()
	if st.ReadOnly {
		t.Fatalf("urgent reclamation never re-opened the engine: %+v", st)
	}
	if got := e.Maint.Stats().Urgent; got == 0 {
		t.Fatal("reclamation did not use the urgent lane")
	}
	insertN(t, e, tbl, 50, 52)
}
