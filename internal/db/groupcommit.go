package db

import (
	"errors"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"mvpbt/internal/txn"
	"mvpbt/internal/wal"
)

// ErrClosed is returned by a durable commit that reaches the engine after
// Close has fenced the commit pipeline: the transaction was NOT committed
// (in memory or on the device) and the caller must not acknowledge it.
var ErrClosed = errors.New("db: engine closed")

// GroupCommitConfig tunes WAL group commit (Config.GroupCommit). Disabled
// by default, which preserves the historical behaviour: every durable
// commit appends its commit record and flushes the log itself.
type GroupCommitConfig struct {
	// Enabled turns on the leader/follower commit batcher: concurrent
	// committers enqueue their commit record and one leader flushes the
	// combined log tail for the whole batch.
	Enabled bool
	// MaxBatch caps the number of commits acknowledged by one flush
	// (default 64).
	MaxBatch int
	// MaxDelay bounds how long a leader waits for followers to join the
	// batch before flushing. 0 (the default) flushes immediately; batching
	// then still emerges naturally, because committers that arrive while a
	// flush is in progress queue behind it and are drained as one batch by
	// the promoted next leader.
	MaxDelay time.Duration
}

func (c GroupCommitConfig) withDefaults() GroupCommitConfig {
	if c.MaxBatch <= 0 {
		c.MaxBatch = 64
	}
	return c
}

// commitWaiter is one committer's slot in the batch queue. Waiters are
// pooled: the WaitGroup is reused across commits (Add(1) on enqueue, Done
// by the leader after the shared flush result is stored in err).
type commitWaiter struct {
	wg   sync.WaitGroup
	err  error
	lead bool // set (under the batcher mutex) before Done: run the next batch
}

// groupCommitter implements WAL group commit (DESIGN.md §11): committers
// append their commit record under walMu, enqueue themselves, and the
// first committer to arrive while no leader is active becomes the leader —
// it optionally waits up to MaxDelay for the batch to fill, flushes the
// log ONCE, and broadcasts the flush result to every waiter in the batch.
// If more committers queued while it flushed, it promotes the oldest of
// them to leader and hands off, so its own caller's latency stays bounded
// while the queue can never be left leaderless (invariant: whenever the
// queue is non-empty, a leader exists).
//
// Error propagation: the shared flush error is returned to every waiter in
// the batch, making each of their commits IN DOUBT exactly per the
// CommitDurable contract — every waiter's commit record was appended
// before the flush began, so the record may or may not have reached the
// device.
type groupCommitter struct {
	e        *Engine
	maxBatch int
	maxDelay time.Duration

	mu     sync.Mutex
	idle   sync.Cond // signalled when the leader abdicates with an empty queue
	queue  []*commitWaiter
	free   []*commitWaiter // spare queue backing array, swapped with queue
	leader bool
	closed bool

	pool sync.Pool // *commitWaiter

	batches    atomic.Int64 // flushes performed by batch leaders
	commits    atomic.Int64 // commit records acknowledged through the batcher
	maxBatched atomic.Int64 // largest batch acknowledged by one flush
}

func newGroupCommitter(e *Engine, cfg GroupCommitConfig) *groupCommitter {
	cfg = cfg.withDefaults()
	g := &groupCommitter{e: e, maxBatch: cfg.MaxBatch, maxDelay: cfg.MaxDelay}
	g.idle.L = &g.mu
	g.pool.New = func() any { return new(commitWaiter) }
	return g
}

// commit appends tx's commit record and blocks until a leader has flushed
// it (or reports the batch's shared flush failure). Returns ErrClosed —
// without appending anything — once the engine is fenced by Close.
func (g *groupCommitter) commit(tx *txn.Tx) error {
	e := g.e
	w := g.pool.Get().(*commitWaiter)
	g.mu.Lock()
	if g.closed {
		g.mu.Unlock()
		g.pool.Put(w)
		return ErrClosed
	}
	w.err, w.lead = nil, false
	w.wg.Add(1)
	// Append the commit record before joining the queue (both under the
	// batcher mutex): whichever flush serves the queue entry is then
	// guaranteed to cover the record.
	e.walMu.RLock()
	e.wal.Append(&wal.Record{Op: wal.OpCommit, TxID: uint64(tx.ID)})
	e.walMu.RUnlock()
	g.queue = append(g.queue, w)
	lead := !g.leader
	if lead {
		g.leader = true
	}
	g.mu.Unlock()

	// WaitGroup discipline: every Add(1) above is balanced by exactly one
	// Done — by the batch leader for a served follower, by the outgoing
	// leader for a promoted follower, or right here for a waiter that
	// became leader immediately (it never waits on itself).
	if lead {
		w.wg.Done()
		g.runLeader(w)
	} else {
		w.wg.Wait()
		if w.lead {
			// Promoted: drain the next batch (our own record included).
			g.runLeader(w)
		}
	}
	err := w.err
	g.pool.Put(w)
	return err
}

// runLeader executes one batch: wait window, cut the batch (own is always
// queue[0] — see commit/promotion), flush once, broadcast the result, and
// either abdicate (empty queue) or promote the next leader.
func (g *groupCommitter) runLeader(own *commitWaiter) {
	e := g.e
	g.waitWindow()

	g.mu.Lock()
	batch := g.queue
	rest := g.free[:0]
	if len(batch) > g.maxBatch {
		rest = append(rest, batch[g.maxBatch:]...)
		batch = batch[:g.maxBatch]
	}
	g.queue, g.free = rest, batch[:0:cap(batch)]
	g.mu.Unlock()

	e.walMu.RLock()
	err := e.wal.Flush()
	e.walMu.RUnlock()

	g.batches.Add(1)
	g.commits.Add(int64(len(batch)))
	if n := int64(len(batch)); n > g.maxBatched.Load() {
		g.maxBatched.Store(n) // single leader at a time: no lost update
	}
	for i, w := range batch {
		w.err = err
		if w != own {
			w.wg.Done()
		}
		batch[i] = nil // drop the reference: the waiter is pooled
	}

	g.mu.Lock()
	if len(g.queue) == 0 {
		g.leader = false
		g.idle.Broadcast()
		g.mu.Unlock()
		return
	}
	next := g.queue[0]
	next.lead = true
	g.mu.Unlock()
	next.wg.Done()
}

// waitWindow gives followers up to maxDelay to join the batch. The leader
// spins with Gosched rather than sleeping: the delays in play are in the
// microseconds, far below timer resolution.
func (g *groupCommitter) waitWindow() {
	if g.maxDelay <= 0 {
		return
	}
	deadline := time.Now().Add(g.maxDelay)
	for {
		g.mu.Lock()
		n := len(g.queue)
		closed := g.closed
		g.mu.Unlock()
		if n >= g.maxBatch || closed || !time.Now().Before(deadline) {
			return
		}
		runtime.Gosched()
	}
}

// close fences the batcher: new committers get ErrClosed, and close blocks
// until every already-enqueued committer has been served. Leaders drain a
// non-empty queue by promotion, so termination is guaranteed.
func (g *groupCommitter) close() {
	g.mu.Lock()
	g.closed = true
	for g.leader || len(g.queue) > 0 {
		g.idle.Wait()
	}
	g.mu.Unlock()
}

// GroupCommitStats reports the batcher's counters (zero when group commit
// is disabled).
type GroupCommitStats struct {
	Batches    int64 // leader flushes
	Commits    int64 // commits acknowledged through the batcher
	MaxBatched int64 // largest number of commits served by one flush
}

// WALStats aggregates commit-pipeline counters for inspection.
type WALStats struct {
	Flushes         int64 // successful log flushes that wrote the device
	Commits         int64 // durable commits that appended a commit record
	ReadOnlyCommits int64 // commits elided entirely (transaction never logged)
	Group           GroupCommitStats
}

// FlushesPerCommit is Flushes/Commits (1.0 without group commit; below 1
// when batches amortize the flush, above 1 when maintenance flushes
// outnumber commits).
func (s WALStats) FlushesPerCommit() float64 {
	if s.Commits == 0 {
		return 0
	}
	return float64(s.Flushes) / float64(s.Commits)
}

// WALStatsSnapshot returns the engine's commit-pipeline counters; zero
// values when logging is disabled.
func (e *Engine) WALStatsSnapshot() WALStats {
	s := WALStats{
		Commits:         e.walCommits.Load(),
		ReadOnlyCommits: e.walROCommits.Load(),
	}
	if e.wal != nil {
		s.Flushes = e.wal.Flushes()
	}
	if e.gc != nil {
		s.Group = GroupCommitStats{
			Batches:    e.gc.batches.Load(),
			Commits:    e.gc.commits.Load(),
			MaxBatched: e.gc.maxBatched.Load(),
		}
	}
	return s
}

// CommitBatchDurable durably commits txs together under a single log
// flush: every transaction's commit record (read-only transactions have
// none) is appended, the log is flushed once, and only then are the
// transactions committed in memory. On a flush error NONE of them is
// committed in memory and every one with a commit record is IN DOUBT,
// exactly as in CommitDurable. The call is deterministic (no goroutines),
// which is what the fault campaign's torn-batch scenario needs; concurrent
// committers get the same batching implicitly via Config.GroupCommit.
func (e *Engine) CommitBatchDurable(txs []*txn.Tx) error {
	if e.wal != nil {
		logged := 0
		e.walMu.RLock()
		for _, tx := range txs {
			if tx.WALLogged() {
				e.wal.Append(&wal.Record{Op: wal.OpCommit, TxID: uint64(tx.ID)})
				logged++
			}
		}
		var err error
		if logged > 0 {
			err = e.wal.Flush()
		}
		e.walMu.RUnlock()
		if err != nil {
			return err
		}
		e.walCommits.Add(int64(logged))
		e.walROCommits.Add(int64(len(txs) - logged))
	}
	for _, tx := range txs {
		e.Mgr.Commit(tx)
	}
	e.maybeAutoCheckpoint()
	e.maybeReclaim()
	return nil
}
