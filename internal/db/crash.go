package db

// Crash-restart support for the correctness harness (internal/check) and
// recovery tests: a crash is a failure stop — background maintenance is
// killed with its queue discarded, closers do NOT run (no LSM memtable
// flush), and the WAL tail is NOT flushed. Exactly the bytes already on
// the device (per-commit flushes, the durability points) survive into
// LogImage; everything else is lost, like power failure.

// Crash fails the engine: queued maintenance is discarded, running jobs
// finish (a crash cannot stop a DMA in flight, and partial in-memory
// publishes would violate the simulation's atomicity), and nothing is
// flushed. The engine is left closed — a later Close is a no-op returning
// nil. Take LogImage BEFORE or AFTER Crash; both see the same bytes.
func (e *Engine) Crash() {
	e.closeMu.Lock()
	defer e.closeMu.Unlock()
	if e.closed {
		return
	}
	e.closed = true
	if e.Maint != nil {
		e.Maint.Kill()
	}
}

// Quiesce is the engine-level checkpoint barrier: it blocks until the
// maintenance queue is empty and no background job is running, so every
// eviction, merge, sweep, flush and compaction triggered so far has
// published its result. No-op in synchronous mode.
func (e *Engine) Quiesce() {
	if e.Maint != nil {
		e.Maint.Quiesce()
	}
}
