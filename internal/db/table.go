package db

import (
	"bytes"
	"fmt"
	"sync"
	"sync/atomic"

	"mvpbt/internal/wal"

	"mvpbt/internal/heap"
	"mvpbt/internal/index"
	"mvpbt/internal/index/btree"
	"mvpbt/internal/index/mvpbt"
	"mvpbt/internal/index/pbt"
	"mvpbt/internal/sfile"
	"mvpbt/internal/storage"
	"mvpbt/internal/txn"
	"mvpbt/internal/vid"
)

// HeapKind selects the base-table organization.
type HeapKind int

// Base-table organizations (§3, §5 "Experimental Setup").
const (
	// HeapHOT is the PostgreSQL-style heap with Heap-Only Tuples.
	HeapHOT HeapKind = iota
	// HeapSIAS is Snapshot Isolation Append Storage.
	HeapSIAS
)

func (k HeapKind) String() string {
	switch k {
	case HeapHOT:
		return "hot"
	case HeapSIAS:
		return "sias"
	}
	return fmt.Sprintf("HeapKind(%d)", int(k))
}

// IndexKind selects the index structure.
type IndexKind int

// Index structures under evaluation.
const (
	IdxBTree IndexKind = iota
	IdxPBT
	IdxMVPBT
)

// RefMode selects what index entries point at (§3.5).
type RefMode int

// Reference modes.
const (
	// RefPhysical stores recordIDs: direct access, but index maintenance
	// whenever the chain entry-point moves.
	RefPhysical RefMode = iota
	// RefLogical stores VIDs resolved through the indirection layer: no
	// maintenance for non-key updates.
	RefLogical
)

// IndexDef declares one index of a table.
type IndexDef struct {
	Name    string
	Kind    IndexKind
	RefMode RefMode
	Unique  bool
	// Extract derives the index key from a row payload.
	Extract func(row []byte) []byte
	// BloomBits / PrefixLen configure partition filters (PBT, MV-PBT).
	BloomBits int
	PrefixLen int
	// DisableGC turns off MV-PBT partition garbage collection.
	DisableGC bool
	// MaxPartitions enables MV-PBT on-line partition merging above this
	// count (0 = off).
	MaxPartitions int
	// NoIdxVC makes an MV-PBT behave version-obliviously for reads (the
	// Figure 12a ablation): scans return all matter records and the base
	// table performs the visibility check.
	NoIdxVC bool
}

// Index is one materialized index of a table.
type Index struct {
	Def  IndexDef
	bt   *btree.Tree
	pb   *pbt.Tree
	mv   *mvpbt.Tree
	file *sfile.File
	gen  int // rebuild generation (0 = original build)
}

// MV returns the underlying MV-PBT (nil for other kinds) for
// metadata/statistics access.
func (ix *Index) MV() *mvpbt.Tree { return ix.mv }

// BT returns the underlying B-Tree (nil for other kinds).
func (ix *Index) BT() *btree.Tree { return ix.bt }

// PB returns the underlying PBT (nil for other kinds).
func (ix *Index) PB() *pbt.Tree { return ix.pb }

// Table binds a heap to its indexes.
type Table struct {
	eng      *Engine
	name     string
	heapKind HeapKind
	hot      *heap.HotHeap
	sias     *heap.SiasHeap
	h        heap.Heap
	vids     *vid.Table
	indexes  []*Index
	mu       sync.Mutex
	rebuilds atomic.Int64 // corrupt-index quarantine rebuilds
}

// Rebuilds returns how many times a corrupt version-oblivious index of this
// table was quarantined and rebuilt from the base table.
func (t *Table) Rebuilds() int64 { return t.rebuilds.Load() }

// NewTable creates a table with the given heap organization and indexes.
func (e *Engine) NewTable(name string, hk HeapKind, defs ...IndexDef) (*Table, error) {
	t := &Table{eng: e, name: name, heapKind: hk}
	hf := e.FM.Create(name+".heap", sfile.ClassTable)
	switch hk {
	case HeapHOT:
		t.hot = heap.NewHotHeap(e.Pool, hf, e.Mgr)
		t.h = t.hot
		t.vids = vid.NewTable()
	case HeapSIAS:
		t.sias = heap.NewSiasHeap(e.Pool, hf, e.Mgr)
		t.h = t.sias
		t.vids = t.sias.VIDs()
	default:
		return nil, fmt.Errorf("db: unknown heap kind %d", hk)
	}
	for _, def := range defs {
		ix := &Index{Def: def}
		f := e.FM.Create(name+"."+def.Name, sfile.ClassIndex)
		ix.file = f
		switch def.Kind {
		case IdxBTree:
			bt, err := btree.New(e.Pool, f)
			if err != nil {
				return nil, err
			}
			ix.bt = bt
		case IdxPBT:
			ix.pb = pbt.New(e.Pool, f, e.PBuf, pbt.Options{
				Name: name + "." + def.Name, BloomBits: def.BloomBits, PrefixLen: def.PrefixLen,
			})
		case IdxMVPBT:
			ix.mv = mvpbt.New(e.Pool, f, e.PBuf, e.Mgr, mvpbt.Options{
				Name: name + "." + def.Name, Unique: def.Unique,
				BloomBits: def.BloomBits, PrefixLen: def.PrefixLen,
				DisableGC: def.DisableGC, MaxPartitions: def.MaxPartitions,
			})
			e.wireMaint(name+"."+def.Name, ix.mv)
		default:
			return nil, fmt.Errorf("db: unknown index kind %d", def.Kind)
		}
		t.indexes = append(t.indexes, ix)
	}
	e.tablesMu.Lock()
	e.tables[name] = t
	e.tablesMu.Unlock()
	return t, nil
}

// Indexes returns the table's indexes in definition order.
func (t *Table) Indexes() []*Index { return t.indexes }

// Index returns the index with the given name, or nil.
func (t *Table) Index(name string) *Index {
	for _, ix := range t.indexes {
		if ix.Def.Name == name {
			return ix
		}
	}
	return nil
}

// Heap exposes the underlying heap.
func (t *Table) Heap() heap.Heap { return t.h }

func (t *Table) ref(rid storage.RecordID, v uint64) index.Ref {
	return index.Ref{RID: rid, VID: v}
}

// RowRef identifies a visible row: its location, tuple identity, index
// key and (when requested) payload.
type RowRef struct {
	RID storage.RecordID
	VID uint64
	// Key is the index key of the entry that produced this row; available
	// on scans and lookups even when Row is not fetched (index-only reads).
	Key []byte
	Row []byte
}

// Insert adds a new tuple and maintains every index. It returns the
// tuple's VID and initial version rid.
func (t *Table) Insert(tx *txn.Tx, row []byte) (uint64, storage.RecordID, error) {
	if err := t.eng.writeGate(); err != nil {
		return 0, storage.RecordID{}, err
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.logOp(tx, wal.OpInsert, t.pkKey(row), row)
	v := t.vids.Alloc()
	rid, err := t.h.Insert(tx, v, row)
	if err != nil {
		return 0, storage.RecordID{}, t.eng.noteWriteErr(err)
	}
	if t.heapKind == HeapHOT {
		t.vids.Set(v, rid)
	}
	for _, ix := range t.indexes {
		key := ix.Def.Extract(row)
		ref := t.ref(rid, v)
		var ierr error
		switch {
		case ix.bt != nil:
			ierr = ix.bt.Insert(key, ref)
		case ix.pb != nil:
			ierr = ix.pb.Insert(key, ref)
		case ix.mv != nil:
			ierr = ix.mv.InsertRegular(tx, key, ref)
		}
		if ierr != nil {
			return 0, storage.RecordID{}, t.eng.noteWriteErr(ierr)
		}
	}
	return v, rid, nil
}

// Update replaces the version at old (which the caller found visible via a
// read) with newRow, maintaining indexes per their kind and reference
// mode. Write-write conflicts surface as heap.ErrWriteConflict.
func (t *Table) Update(tx *txn.Tx, old RowRef, newRow []byte) (storage.RecordID, error) {
	if err := t.eng.writeGate(); err != nil {
		return storage.RecordID{}, err
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	type keyPair struct {
		oldKey, newKey []byte
		changed        bool
	}
	pairs := make([]keyPair, len(t.indexes))
	hotEligible := true
	for i, ix := range t.indexes {
		ok, nk := ix.Def.Extract(old.Row), ix.Def.Extract(newRow)
		changed := !bytes.Equal(ok, nk)
		pairs[i] = keyPair{oldKey: ok, newKey: nk, changed: changed}
		if changed {
			hotEligible = false
		}
	}
	res, err := t.h.Update(tx, old.RID, old.VID, newRow, hotEligible)
	if err != nil {
		return storage.RecordID{}, t.eng.noteWriteErr(err)
	}
	t.logOp(tx, wal.OpUpdate, t.pkKey(old.Row), newRow)
	newRID := res.NewRID
	if t.heapKind == HeapHOT && newRID.Valid() {
		// Track the newest version for convenience reads by VID.
		t.vids.Set(old.VID, newRID)
	}
	for i, ix := range t.indexes {
		p := pairs[i]
		ref := t.ref(newRID, old.VID)
		var ierr error
		switch {
		case ix.mv != nil:
			if p.changed {
				ierr = ix.mv.InsertKeyUpdate(tx, p.oldKey, p.newKey, ref, old.RID)
			} else {
				ierr = ix.mv.InsertReplacement(tx, p.oldKey, ref, old.RID)
			}
		case ix.bt != nil || ix.pb != nil:
			// Version-oblivious maintenance: a new entry is needed when
			// the key changed, or — with physical references — whenever
			// the entry-point moved (SIAS: every update; HOT: non-HOT
			// updates). Logical references ride the indirection layer.
			need := p.changed || (ix.Def.RefMode == RefPhysical && res.NeedsIndexUpdate)
			if need {
				if ix.bt != nil {
					ierr = ix.bt.Insert(p.newKey, ref)
				} else {
					ierr = ix.pb.Insert(p.newKey, ref)
				}
			}
		}
		if ierr != nil {
			return storage.RecordID{}, t.eng.noteWriteErr(ierr)
		}
	}
	return newRID, nil
}

// Delete removes the tuple whose visible version is old.
func (t *Table) Delete(tx *txn.Tx, old RowRef) error {
	if err := t.eng.writeGate(); err != nil {
		return err
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if _, err := t.h.Delete(tx, old.RID, old.VID); err != nil {
		return t.eng.noteWriteErr(err)
	}
	t.logOp(tx, wal.OpDelete, t.pkKey(old.Row), nil)
	for _, ix := range t.indexes {
		if ix.mv != nil {
			if err := ix.mv.InsertTombstone(tx, ix.Def.Extract(old.Row), old.RID); err != nil {
				return t.eng.noteWriteErr(err)
			}
		}
		// Version-oblivious indexes are left alone: the heap's
		// invalidation (HOT) or tombstone version (SIAS) hides the tuple,
		// and dead entries go with vacuum (PostgreSQL semantics).
	}
	return nil
}

// Vacuum reclaims dead versions in the heap.
func (t *Table) Vacuum() (int, error) {
	return t.h.Vacuum(t.eng.Mgr.Horizon())
}

// RebuildIndex quarantines a corrupt version-oblivious index (B-Tree or
// PBT) and rebuilds it from the base table: the heap streams its index
// entry-points (Heap.ScanVersions), a fresh tree is built in a new file,
// the table swaps over to it, and the old file's pages are dropped from the
// buffer pool and freed on the device. The base table is the source of
// truth, so derived-structure corruption is recoverable; errors reading the
// HEAP during the rebuild are surfaced unchanged — those are not.
//
// MV-PBT indexes cannot be rebuilt this way: their entries carry
// per-version transactional metadata (invalidation records, tombstones)
// tied to live transaction state. Corruption there is a hard error.
func (t *Table) RebuildIndex(ix *Index) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if ix.bt == nil && ix.pb == nil {
		return fmt.Errorf("db: index %s.%s is not version-oblivious and cannot be rebuilt from the base table", t.name, ix.Def.Name)
	}
	e := t.eng
	gen := ix.gen + 1
	f := e.FM.Create(fmt.Sprintf("%s.%s.r%d", t.name, ix.Def.Name, gen), sfile.ClassIndex)
	var nbt *btree.Tree
	var npb *pbt.Tree
	var insert func(key []byte, ref index.Ref) error
	if ix.bt != nil {
		var err error
		if nbt, err = btree.New(e.Pool, f); err != nil {
			return err
		}
		insert = nbt.Insert
	} else {
		npb = pbt.New(e.Pool, f, e.PBuf, pbt.Options{
			Name:      fmt.Sprintf("%s.%s.r%d", t.name, ix.Def.Name, gen),
			BloomBits: ix.Def.BloomBits, PrefixLen: ix.Def.PrefixLen,
		})
		insert = npb.Insert
	}
	var ierr error
	err := t.h.ScanVersions(func(rid storage.RecordID, v heap.Version) bool {
		ierr = insert(ix.Def.Extract(v.Data), index.Ref{RID: rid, VID: v.VID})
		return ierr == nil
	})
	if err != nil {
		return err // heap unreadable: the rebuild source itself is damaged
	}
	if ierr != nil {
		return ierr
	}
	old, oldPB := ix.file, ix.pb
	ix.bt, ix.pb, ix.file, ix.gen = nbt, npb, f, gen
	if oldPB != nil {
		e.PBuf.Unregister(oldPB)
	}
	if n := old.NumPages(); n > 0 {
		e.Pool.DropFilePages(old, 0, int(n))
		old.FreeRun(0, int(n))
	}
	t.rebuilds.Add(1)
	return nil
}
