package db

import (
	"errors"
	"fmt"

	"mvpbt/internal/maint"
	"mvpbt/internal/storage"
)

// Space governance. A bounded device (Config.DeviceCapacityBytes) gets two
// watermarks. Crossing the SOFT watermark triggers urgent reclamation — WAL
// checkpoint/truncation first (frees whole extents of dead log), then
// partition garbage collection, merges and heap vacuum — on the maintenance
// service's urgent lane (bypassing the background rate limiter) or, in
// synchronous mode, at the next commit/abort boundary. Crossing the HARD
// watermark additionally degrades the engine to READ-ONLY: new row writes
// fail fast with ErrReadOnly while reads, scans, commits and aborts keep
// working, so the engine stays queryable instead of grinding into ENOSPC
// failures mid-transaction. The degradation heals itself: once reclamation
// (or external deletes) brings live bytes back under the soft watermark the
// engine re-opens for writes.
//
// The wiring: sfile.Manager calls Engine.onSpace with the live byte count
// after every extent allocation and free (outside all sfile locks), and a
// write that still manages to hit storage.ErrNoSpace — the budget can be
// exceeded between the notification and the next allocation — flips the
// engine read-only through the same path.

// ErrReadOnly is returned by write operations while the engine is degraded
// to read-only because device space ran out. Reads and scans still work;
// the engine re-opens for writes once space drops below the soft watermark.
var ErrReadOnly = errors.New("db: engine is read-only: device space exhausted")

// SpaceStats reports the governor's view of the device.
type SpaceStats struct {
	Capacity  int64 // configured budget (0 = unbounded)
	Soft      int64 // reclamation watermark
	Hard      int64 // read-only watermark
	Live      int64 // bytes currently allocated
	HighWater int64 // peak allocation frontier
	ReadOnly  bool
	ROEntries int64 // times the engine degraded to read-only
	ROExits   int64 // times it re-opened for writes
	Reclaims  int64 // urgent reclamation passes run
}

// SpaceInfo returns the governor's current statistics.
func (e *Engine) SpaceInfo() SpaceStats {
	return SpaceStats{
		Capacity:  e.FM.CapacityBytes(),
		Soft:      e.cfg.SpaceSoftBytes,
		Hard:      e.cfg.SpaceHardBytes,
		Live:      e.FM.LiveBytes(),
		HighWater: e.FM.HighWaterBytes(),
		ReadOnly:  e.readOnly.Load(),
		ROEntries: e.roEntries.Load(),
		ROExits:   e.roExits.Load(),
		Reclaims:  e.reclaims.Load(),
	}
}

// ReadOnly reports whether the engine is degraded to read-only.
func (e *Engine) ReadOnly() bool { return e.readOnly.Load() }

// ForceReadOnly manually degrades (on=true) or restores (on=false) the
// engine, through the same state machine the space governor drives: writes
// fail fast with ErrReadOnly while reads, scans, commits and aborts keep
// working. An administrative/testing seam — the shard router uses it to
// exercise degraded-shard behaviour deterministically. On an engine with
// capacity watermarks configured the governor may independently re-evaluate
// the state on the next space event (a forced degradation below the soft
// watermark heals on the next allocation); on an unbounded engine the
// forced state sticks until the next ForceReadOnly call.
func (e *Engine) ForceReadOnly(on bool) {
	if on {
		if e.readOnly.CompareAndSwap(false, true) {
			e.roEntries.Add(1)
		}
		return
	}
	if e.readOnly.CompareAndSwap(true, false) {
		e.roExits.Add(1)
	}
}

// onSpace is the sfile space notifier: classify live bytes against the
// watermarks and react. Called after every extent alloc/free with no sfile
// locks held, and possibly from many goroutines at once.
// Reclamation is edge-triggered: one pass per upward crossing of the soft
// watermark (plus one per read-only entry and one per late ENOSPC), not one
// per allocation above it — a steady writer between the watermarks must not
// pay a reclamation pass on every commit.
func (e *Engine) onSpace(live int64) {
	e.evalSpace(live)
	if e.cfg.SpaceSoftBytes > 0 {
		if live >= e.cfg.SpaceSoftBytes {
			if e.aboveSoft.CompareAndSwap(false, true) {
				e.requestReclaim()
			}
		} else {
			e.aboveSoft.Store(false)
		}
	}
}

// evalSpace toggles the read-only state (entry at hard, exit below soft)
// without requesting reclamation — the hysteresis band between the two
// watermarks keeps the state from flapping on every alloc/free pair.
func (e *Engine) evalSpace(live int64) {
	switch {
	case e.cfg.SpaceHardBytes > 0 && live >= e.cfg.SpaceHardBytes:
		e.enterReadOnly()
	case e.cfg.SpaceSoftBytes > 0 && live < e.cfg.SpaceSoftBytes:
		if e.readOnly.CompareAndSwap(true, false) {
			e.roExits.Add(1)
		}
	}
}

func (e *Engine) enterReadOnly() {
	if e.readOnly.CompareAndSwap(false, true) {
		e.roEntries.Add(1)
		e.requestReclaim()
	}
}

// ReclaimNow synchronously runs one reclamation pass — the same pass the
// space governor schedules at watermark crossings: WAL checkpoint and log
// truncation, MV-PBT garbage collection and partition merges, heap
// vacuum. An administrative seam, the equivalent of a manual
// CHECKPOINT+VACUUM maintenance window in a conventional DBMS; the
// governor's edge-triggered passes remain the automatic path. The
// checkpoint step silently skips (it does not fail) while transactions
// are active.
func (e *Engine) ReclaimNow() error { return e.reclaimSpace() }

// requestReclaim schedules an urgent reclamation pass. With background
// maintenance it rides the urgent lane (front of queue, no rate limiting,
// deduplicated while one is already pending). In synchronous mode the
// notifier may be firing from inside a write path that holds table or tree
// locks, so the pass is deferred to the next commit/abort boundary.
func (e *Engine) requestReclaim() {
	if e.Maint != nil {
		e.Maint.SubmitUrgent(maint.Reclaim, "space", e.reclaimSpace)
		return
	}
	e.reclaimPending.Store(true)
}

// maybeReclaim runs due reclamation at a commit/abort boundary — the point
// where no table locks are held and the calling transaction is no longer
// active (so the WAL checkpoint can proceed when the engine is otherwise
// quiescent). A pass is due when one is pending (synchronous mode), or
// whenever the engine is read-only: reclamation while degraded may have
// been impotent — a long-running reader pinning the GC horizon and holding
// the checkpoint busy — and the boundary that ends such a transaction is
// precisely the moment a retry can finally make progress.
func (e *Engine) maybeReclaim() {
	pending := e.reclaimPending.CompareAndSwap(true, false)
	if !pending && !e.readOnly.Load() {
		return
	}
	if e.Maint != nil {
		e.Maint.SubmitUrgent(maint.Reclaim, "space", e.reclaimSpace)
		return
	}
	e.reclaimSpace() //nolint:errcheck // best-effort; watermarks re-evaluated inside
}

// reclaimSpace is one urgent reclamation pass, cheapest lever first:
//
//  1. WAL checkpoint — truncating the log frees whole extents of dead
//     history and is usually the largest single win. Skipped (not failed)
//     when transactions are active or the WAL is off.
//  2. MV-PBT garbage collection and partition merges — dropping
//     out-of-snapshot versions and merge duplicates.
//  3. Heap vacuum — reclaiming dead row versions.
//
// The final watermark re-evaluation re-opens the engine if enough space
// came back; it deliberately does NOT re-request reclamation, so a pass
// that frees nothing terminates instead of looping — the next allocation
// above the soft watermark schedules a fresh pass.
func (e *Engine) reclaimSpace() error {
	e.reclaims.Add(1)
	if e.wal != nil {
		if err := e.Checkpoint(); err != nil && !errors.Is(err, ErrCheckpointBusy) {
			// Checkpoint failure is survivable (the old log stays
			// authoritative) but worth surfacing to maintenance stats.
			e.ckptErrs.Add(1)
		}
	}
	e.tablesMu.Lock()
	tables := make([]*Table, 0, len(e.tables))
	for _, t := range e.tables {
		tables = append(tables, t)
	}
	kvs := make([]*MVPBTKV, 0, len(e.kvs))
	for _, kv := range e.kvs {
		kvs = append(kvs, kv)
	}
	e.tablesMu.Unlock()
	var first error
	for _, kv := range kvs {
		kv.tree.SweepPN()
		if kv.tree.NeedsMerge() {
			if err := kv.tree.MergePartitions(); err != nil && first == nil {
				first = fmt.Errorf("db: reclaim: merging KV %s: %w", kv.name, err)
			}
		}
	}
	for _, t := range tables {
		for _, ix := range t.indexes {
			if ix.mv == nil {
				continue
			}
			ix.mv.SweepPN()
			if ix.mv.NeedsMerge() {
				if err := ix.mv.MergePartitions(); err != nil && first == nil {
					first = fmt.Errorf("db: reclaim: merging %s.%s: %w", t.name, ix.Def.Name, err)
				}
			}
		}
		if _, err := t.Vacuum(); err != nil && first == nil {
			first = fmt.Errorf("db: reclaim: vacuuming %s: %w", t.name, err)
		}
	}
	e.evalSpace(e.FM.LiveBytes())
	return first
}

// writeGate is the fast-path admission check at the head of every row
// write. It also converts a late storage.ErrNoSpace — one that slipped past
// the watermarks — into read-only degradation via noteWriteErr.
func (e *Engine) writeGate() error {
	if e.readOnly.Load() {
		return ErrReadOnly
	}
	return nil
}

// noteWriteErr inspects a write-path error: device exhaustion degrades the
// engine to read-only (and schedules reclamation) so subsequent writes fail
// fast instead of repeatedly dying inside the allocator. The error is
// returned unchanged.
func (e *Engine) noteWriteErr(err error) error {
	if err != nil && errors.Is(err, storage.ErrNoSpace) {
		e.enterReadOnly()
		e.requestReclaim()
	}
	return err
}
