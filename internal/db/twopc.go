package db

import (
	"fmt"
	"time"

	"mvpbt/internal/txn"
	"mvpbt/internal/wal"
)

// Two-phase commit, participant side (DESIGN.md §15). A cross-shard
// coordinator drives each written leg through PREPARE (this file) instead
// of a unilateral commit: PrepareDurable flushes an OpPrepare record — the
// leg's vote — and parks the transaction handle in the engine's in-doubt
// registry, still InProgress, so its versions stay durable but invisible.
// ResolveGroup later finishes it per the coordinator's decision: a commit
// flushes an OpDecideCommit record first (the leg's durability point,
// exactly like an ordinary commit record), an abort appends OpDecideAbort
// without a flush — presumed abort means a lost abort record costs nothing,
// recovery aborts undecided transactions whose group the coordinator does
// not vouch for.
//
// An in-doubt transaction pins the GC horizon and keeps ActiveCount
// nonzero, so Checkpoint correctly refuses to run (ErrCheckpointBusy)
// while any leg awaits its decision — a snapshot cannot classify a version
// that is neither committed nor aborted.

// preparedTx is one in-doubt registry entry.
type preparedTx struct {
	tx  *txn.Tx
	gid uint64    // coordinator commit-group id
	at  time.Time // wall-clock prepare time (diagnostics only)
}

// InDoubtTxn describes one in-doubt transaction (introspection/resolution).
type InDoubtTxn struct {
	TxID txn.TxID
	GID  uint64 // coordinator commit-group id from the prepare record
}

// TwoPCStats is an engine's commit-protocol health snapshot.
type TwoPCStats struct {
	Prepares        int64 // prepare records durably flushed
	ResolvedCommits int64 // in-doubt transactions resolved to commit
	ResolvedAborts  int64 // in-doubt transactions resolved to abort
	InDoubt         int   // currently prepared, awaiting a decision
	OldestAge       time.Duration
}

// PrepareDurable votes YES on tx for commit-group gid: the transaction's
// row operations and an OpPrepare record are flushed to the device, and the
// handle is parked in the in-doubt registry instead of finishing. On error
// the transaction is NOT prepared (the caller aborts it; durability of the
// prepare is in doubt exactly like CommitDurable's contract, and recovery
// treats a flushed prepare without a decision as in-doubt, never as
// committed). Requires EnableWAL and a transaction that logged at least one
// row operation.
func (e *Engine) PrepareDurable(tx *txn.Tx, gid uint64) error {
	if e.wal == nil {
		return fmt.Errorf("db: PrepareDurable on an engine without EnableWAL")
	}
	if !tx.WALLogged() {
		return fmt.Errorf("db: PrepareDurable on a transaction with no logged writes")
	}
	e.walMu.RLock()
	e.wal.Append(&wal.Record{Op: wal.OpPrepare, TxID: uint64(tx.ID), Key: wal.GroupKey(gid)})
	err := e.wal.Flush()
	e.walMu.RUnlock()
	if err != nil {
		return err
	}
	e.inDoubtMu.Lock()
	e.inDoubt[tx.ID] = &preparedTx{tx: tx, gid: gid, at: time.Now()}
	e.inDoubtMu.Unlock()
	e.prepares.Add(1)
	return nil
}

// ResolveGroup finishes every in-doubt transaction prepared under gid per
// the coordinator's decision, returning how many it resolved (0 when none
// are in doubt for gid — already resolved, or never prepared here). A
// commit decision is durable: the decide record is flushed before the
// transaction commits in memory, and a flush failure leaves the
// transaction in doubt (retriable — the log writer resumes at the failed
// page, and a restart re-resolves from the recovered prepare record).
func (e *Engine) ResolveGroup(gid uint64, commit bool) (int, error) {
	e.inDoubtMu.Lock()
	var txns []*preparedTx
	for _, p := range e.inDoubt {
		if p.gid == gid {
			txns = append(txns, p)
		}
	}
	e.inDoubtMu.Unlock()
	n := 0
	for _, p := range txns {
		if err := e.resolvePrepared(p, commit); err != nil {
			return n, err
		}
		n++
	}
	return n, nil
}

// ResolvePrepared finishes one in-doubt transaction by id (recovery-side
// resolution, where the caller walks InDoubtList). No-op when txid is not
// in doubt.
func (e *Engine) ResolvePrepared(txid txn.TxID, commit bool) error {
	e.inDoubtMu.Lock()
	p := e.inDoubt[txid]
	e.inDoubtMu.Unlock()
	if p == nil {
		return nil
	}
	return e.resolvePrepared(p, commit)
}

func (e *Engine) resolvePrepared(p *preparedTx, commit bool) error {
	if commit {
		e.walMu.RLock()
		e.wal.Append(&wal.Record{Op: wal.OpDecideCommit, TxID: uint64(p.tx.ID), Key: wal.GroupKey(p.gid)})
		err := e.wal.Flush()
		e.walMu.RUnlock()
		if err != nil {
			return err
		}
		e.walCommits.Add(1)
		e.Mgr.Commit(p.tx)
		e.resolveCommits.Add(1)
	} else {
		e.walMu.RLock()
		e.wal.Append(&wal.Record{Op: wal.OpDecideAbort, TxID: uint64(p.tx.ID), Key: wal.GroupKey(p.gid)})
		e.walMu.RUnlock()
		e.Mgr.Abort(p.tx)
		e.resolveAborts.Add(1)
	}
	e.inDoubtMu.Lock()
	delete(e.inDoubt, p.tx.ID)
	e.inDoubtMu.Unlock()
	e.maybeAutoCheckpoint()
	e.maybeReclaim()
	return nil
}

// InDoubtList snapshots the in-doubt registry — what a recovering shard
// hands to the coordinator-log consultation.
func (e *Engine) InDoubtList() []InDoubtTxn {
	e.inDoubtMu.Lock()
	defer e.inDoubtMu.Unlock()
	out := make([]InDoubtTxn, 0, len(e.inDoubt))
	for id, p := range e.inDoubt {
		out = append(out, InDoubtTxn{TxID: id, GID: p.gid})
	}
	return out
}

// TwoPCInfo returns the engine's commit-protocol counters.
func (e *Engine) TwoPCInfo() TwoPCStats {
	st := TwoPCStats{
		Prepares:        e.prepares.Load(),
		ResolvedCommits: e.resolveCommits.Load(),
		ResolvedAborts:  e.resolveAborts.Load(),
	}
	e.inDoubtMu.Lock()
	st.InDoubt = len(e.inDoubt)
	var oldest time.Time
	for _, p := range e.inDoubt {
		if oldest.IsZero() || p.at.Before(oldest) {
			oldest = p.at
		}
	}
	e.inDoubtMu.Unlock()
	if !oldest.IsZero() {
		st.OldestAge = time.Since(oldest)
	}
	return st
}
