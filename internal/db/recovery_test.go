package db

import (
	"fmt"
	"testing"

	"mvpbt/internal/util"
)

// walTable builds a WAL-enabled engine with one MV-PBT table.
func walTable(t *testing.T) (*Engine, *Table, *Index) {
	t.Helper()
	e := NewEngine(Config{BufferPages: 1024, PartitionBufferBytes: 1 << 22, EnableWAL: true})
	tbl, err := e.NewTable("accounts", HeapSIAS, IndexDef{
		Name: "pk", Kind: IdxMVPBT, Unique: true, BloomBits: 10, Extract: keyExtract,
	})
	if err != nil {
		t.Fatal(err)
	}
	return e, tbl, tbl.Indexes()[0]
}

// recoverInto replays a log image into a fresh engine with the same schema.
func recoverInto(t *testing.T, logImage []byte) (*Engine, *Table, *Index, int) {
	t.Helper()
	e, tbl, ix := walTable(t)
	applied, err := e.Recover(logImage, map[string]*Table{"accounts": tbl})
	if err != nil {
		t.Fatal(err)
	}
	return e, tbl, ix, applied
}

func snapshotState(t *testing.T, e *Engine, tbl *Table, ix *Index) map[string]string {
	t.Helper()
	tx := e.Begin()
	defer e.Commit(tx)
	out := map[string]string{}
	err := tbl.Scan(tx, ix, []byte("\x00"), nil, true, func(rr RowRef) bool {
		out[string(keyExtract(rr.Row))] = string(kvValue(rr.Row))
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	return out
}

func TestRecoverCommittedOnly(t *testing.T) {
	e, tbl, ix := walTable(t)
	tx := e.Begin()
	tbl.Insert(tx, row("a", "1"))
	tbl.Insert(tx, row("b", "2"))
	e.Commit(tx)

	// An uncommitted transaction whose ops reach the log via a later
	// commit's flush must still be discarded at recovery.
	dangling := e.Begin()
	tbl.Insert(dangling, row("c", "3"))

	tx = e.Begin()
	cur, _ := tbl.LookupOne(tx, ix, []byte("a"), true)
	tbl.Update(tx, *cur, row("a", "1b"))
	e.Commit(tx)

	// "Crash": take the durable log image; dangling never committed.
	img := e.LogImage()
	_, tbl2, ix2, applied := recoverInto(t, img)
	if applied != 2 {
		t.Fatalf("applied %d txs, want 2", applied)
	}
	e2 := tbl2.eng
	got := snapshotState(t, e2, tbl2, ix2)
	if len(got) != 2 || got["a"] != "1b" || got["b"] != "2" {
		t.Fatalf("recovered state wrong: %v", got)
	}
	_ = dangling
}

func TestRecoverDeleteAndReinsert(t *testing.T) {
	e, tbl, ix := walTable(t)
	tx := e.Begin()
	tbl.Insert(tx, row("k", "v1"))
	e.Commit(tx)
	tx = e.Begin()
	cur, _ := tbl.LookupOne(tx, ix, []byte("k"), true)
	tbl.Delete(tx, *cur)
	e.Commit(tx)
	tx = e.Begin()
	tbl.Insert(tx, row("k", "v2"))
	e.Commit(tx)

	_, tbl2, ix2, _ := recoverInto(t, e.LogImage())
	got := snapshotState(t, tbl2.eng, tbl2, ix2)
	if len(got) != 1 || got["k"] != "v2" {
		t.Fatalf("recovered state wrong: %v", got)
	}
}

func TestRecoverAbortedDiscarded(t *testing.T) {
	e, tbl, ix := walTable(t)
	tx := e.Begin()
	tbl.Insert(tx, row("keep", "x"))
	e.Commit(tx)
	tx = e.Begin()
	tbl.Insert(tx, row("drop", "y"))
	e.Abort(tx)
	// Flush the abort record with a follow-up commit.
	tx = e.Begin()
	cur, _ := tbl.LookupOne(tx, ix, []byte("keep"), true)
	tbl.Update(tx, *cur, row("keep", "x2"))
	e.Commit(tx)

	_, tbl2, ix2, _ := recoverInto(t, e.LogImage())
	got := snapshotState(t, tbl2.eng, tbl2, ix2)
	if len(got) != 1 || got["keep"] != "x2" {
		t.Fatalf("aborted tx leaked into recovery: %v", got)
	}
}

func TestRecoverTruncatedLog(t *testing.T) {
	e, tbl, _ := walTable(t)
	pad := make([]byte, 400)
	for i := range pad {
		pad[i] = 'p'
	}
	for i := 0; i < 50; i++ {
		tx := e.Begin()
		tbl.Insert(tx, row(fmt.Sprintf("k%03d", i), string(pad)))
		e.Commit(tx)
	}
	img := e.LogImage()
	// Crash mid-write: chop the image at an arbitrary point.
	cut := len(img) * 3 / 4
	_, tbl2, ix2, applied := recoverInto(t, img[:cut])
	if applied == 0 || applied >= 50 {
		t.Fatalf("applied %d txs from a truncated log", applied)
	}
	got := snapshotState(t, tbl2.eng, tbl2, ix2)
	// A prefix of the insert sequence, in order.
	if len(got) != applied {
		t.Fatalf("recovered %d rows from %d applied txs", len(got), applied)
	}
	for i := 0; i < applied; i++ {
		if _, ok := got[fmt.Sprintf("k%03d", i)]; !ok {
			t.Fatalf("recovered rows are not a log prefix: missing k%03d of %d", i, applied)
		}
	}
}

func TestRecoveryIsItselfRecoverable(t *testing.T) {
	e, tbl, ix := walTable(t)
	tx := e.Begin()
	tbl.Insert(tx, row("a", "1"))
	tbl.Insert(tx, row("b", "2"))
	e.Commit(tx)
	tx = e.Begin()
	cur, _ := tbl.LookupOne(tx, ix, []byte("b"), true)
	tbl.Update(tx, *cur, row("b", "2x"))
	e.Commit(tx)

	// Recover once; the recovered engine re-logs, so recover AGAIN from the
	// new engine's log.
	e2, tbl2, ix2, _ := recoverInto(t, e.LogImage())
	_, tbl3, ix3, _ := recoverInto(t, e2.LogImage())
	want := snapshotState(t, e2, tbl2, ix2)
	got := snapshotState(t, tbl3.eng, tbl3, ix3)
	if len(got) != len(want) {
		t.Fatalf("double recovery diverged: %v vs %v", got, want)
	}
	for k, v := range want {
		if got[k] != v {
			t.Fatalf("double recovery key %s: %q vs %q", k, got[k], v)
		}
	}
}

func TestRecoverRandomizedHistory(t *testing.T) {
	e, tbl, ix := walTable(t)
	r := util.NewRand(99)
	model := map[string]string{}
	for step := 0; step < 800; step++ {
		k := fmt.Sprintf("k%03d", r.Intn(100))
		commit := r.Intn(4) != 0
		tx := e.Begin()
		cur, err := tbl.LookupOne(tx, ix, []byte(k), true)
		if err != nil {
			t.Fatal(err)
		}
		v := fmt.Sprintf("s%d", step)
		switch {
		case cur == nil:
			_, _, err = tbl.Insert(tx, row(k, v))
		case r.Intn(10) == 0:
			err = tbl.Delete(tx, *cur)
			v = ""
		default:
			_, err = tbl.Update(tx, *cur, row(k, v))
		}
		if err != nil {
			t.Fatal(err)
		}
		if commit {
			e.Commit(tx)
			if v == "" {
				delete(model, k)
			} else {
				model[k] = v
			}
		} else {
			e.Abort(tx)
		}
	}
	_, tbl2, ix2, _ := recoverInto(t, e.LogImage())
	got := snapshotState(t, tbl2.eng, tbl2, ix2)
	if len(got) != len(model) {
		t.Fatalf("recovered %d rows, model %d", len(got), len(model))
	}
	for k, v := range model {
		if got[k] != v {
			t.Fatalf("key %s: recovered %q want %q", k, got[k], v)
		}
	}
}

func TestWALDisabledByDefault(t *testing.T) {
	e := NewEngine(Config{})
	if e.LogImage() != nil {
		t.Fatal("log exists without EnableWAL")
	}
	if _, err := e.Recover(nil, nil); err == nil {
		t.Fatal("Recover should fail without EnableWAL")
	}
}
