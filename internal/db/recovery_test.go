package db

import (
	"errors"
	"fmt"
	"strings"
	"testing"

	"mvpbt/internal/util"
	"mvpbt/internal/wal"
)

// walTable builds a WAL-enabled engine with one MV-PBT table.
func walTable(t *testing.T) (*Engine, *Table, *Index) {
	t.Helper()
	e := NewEngine(Config{BufferPages: 1024, PartitionBufferBytes: 1 << 22, EnableWAL: true})
	tbl, err := e.NewTable("accounts", HeapSIAS, IndexDef{
		Name: "pk", Kind: IdxMVPBT, Unique: true, BloomBits: 10, Extract: keyExtract,
	})
	if err != nil {
		t.Fatal(err)
	}
	return e, tbl, tbl.Indexes()[0]
}

// recoverInto replays a log image into a fresh engine with the same schema.
func recoverInto(t *testing.T, logImage []byte) (*Engine, *Table, *Index, int) {
	t.Helper()
	e, tbl, ix := walTable(t)
	applied, err := e.Recover(logImage, map[string]*Table{"accounts": tbl})
	if err != nil {
		t.Fatal(err)
	}
	return e, tbl, ix, applied
}

func snapshotState(t *testing.T, e *Engine, tbl *Table, ix *Index) map[string]string {
	t.Helper()
	tx := e.Begin()
	defer e.Commit(tx)
	out := map[string]string{}
	err := tbl.Scan(tx, ix, []byte("\x00"), nil, true, func(rr RowRef) bool {
		out[string(keyExtract(rr.Row))] = string(kvValue(rr.Row))
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	return out
}

func TestRecoverCommittedOnly(t *testing.T) {
	e, tbl, ix := walTable(t)
	tx := e.Begin()
	tbl.Insert(tx, row("a", "1"))
	tbl.Insert(tx, row("b", "2"))
	e.Commit(tx)

	// An uncommitted transaction whose ops reach the log via a later
	// commit's flush must still be discarded at recovery.
	dangling := e.Begin()
	tbl.Insert(dangling, row("c", "3"))

	tx = e.Begin()
	cur, _ := tbl.LookupOne(tx, ix, []byte("a"), true)
	tbl.Update(tx, *cur, row("a", "1b"))
	e.Commit(tx)

	// "Crash": take the durable log image; dangling never committed.
	img := e.LogImage()
	_, tbl2, ix2, applied := recoverInto(t, img)
	if applied != 2 {
		t.Fatalf("applied %d txs, want 2", applied)
	}
	e2 := tbl2.eng
	got := snapshotState(t, e2, tbl2, ix2)
	if len(got) != 2 || got["a"] != "1b" || got["b"] != "2" {
		t.Fatalf("recovered state wrong: %v", got)
	}
	_ = dangling
}

func TestRecoverDeleteAndReinsert(t *testing.T) {
	e, tbl, ix := walTable(t)
	tx := e.Begin()
	tbl.Insert(tx, row("k", "v1"))
	e.Commit(tx)
	tx = e.Begin()
	cur, _ := tbl.LookupOne(tx, ix, []byte("k"), true)
	tbl.Delete(tx, *cur)
	e.Commit(tx)
	tx = e.Begin()
	tbl.Insert(tx, row("k", "v2"))
	e.Commit(tx)

	_, tbl2, ix2, _ := recoverInto(t, e.LogImage())
	got := snapshotState(t, tbl2.eng, tbl2, ix2)
	if len(got) != 1 || got["k"] != "v2" {
		t.Fatalf("recovered state wrong: %v", got)
	}
}

func TestRecoverAbortedDiscarded(t *testing.T) {
	e, tbl, ix := walTable(t)
	tx := e.Begin()
	tbl.Insert(tx, row("keep", "x"))
	e.Commit(tx)
	tx = e.Begin()
	tbl.Insert(tx, row("drop", "y"))
	e.Abort(tx)
	// Flush the abort record with a follow-up commit.
	tx = e.Begin()
	cur, _ := tbl.LookupOne(tx, ix, []byte("keep"), true)
	tbl.Update(tx, *cur, row("keep", "x2"))
	e.Commit(tx)

	_, tbl2, ix2, _ := recoverInto(t, e.LogImage())
	got := snapshotState(t, tbl2.eng, tbl2, ix2)
	if len(got) != 1 || got["keep"] != "x2" {
		t.Fatalf("aborted tx leaked into recovery: %v", got)
	}
}

func TestRecoverTruncatedLog(t *testing.T) {
	e, tbl, _ := walTable(t)
	pad := make([]byte, 400)
	for i := range pad {
		pad[i] = 'p'
	}
	for i := 0; i < 50; i++ {
		tx := e.Begin()
		tbl.Insert(tx, row(fmt.Sprintf("k%03d", i), string(pad)))
		e.Commit(tx)
	}
	img := e.LogImage()
	// Crash mid-write: chop the image at an arbitrary point.
	cut := len(img) * 3 / 4
	_, tbl2, ix2, applied := recoverInto(t, img[:cut])
	if applied == 0 || applied >= 50 {
		t.Fatalf("applied %d txs from a truncated log", applied)
	}
	got := snapshotState(t, tbl2.eng, tbl2, ix2)
	// A prefix of the insert sequence, in order.
	if len(got) != applied {
		t.Fatalf("recovered %d rows from %d applied txs", len(got), applied)
	}
	for i := 0; i < applied; i++ {
		if _, ok := got[fmt.Sprintf("k%03d", i)]; !ok {
			t.Fatalf("recovered rows are not a log prefix: missing k%03d of %d", i, applied)
		}
	}
}

func TestRecoveryIsItselfRecoverable(t *testing.T) {
	e, tbl, ix := walTable(t)
	tx := e.Begin()
	tbl.Insert(tx, row("a", "1"))
	tbl.Insert(tx, row("b", "2"))
	e.Commit(tx)
	tx = e.Begin()
	cur, _ := tbl.LookupOne(tx, ix, []byte("b"), true)
	tbl.Update(tx, *cur, row("b", "2x"))
	e.Commit(tx)

	// Recover once; the recovered engine re-logs, so recover AGAIN from the
	// new engine's log.
	e2, tbl2, ix2, _ := recoverInto(t, e.LogImage())
	_, tbl3, ix3, _ := recoverInto(t, e2.LogImage())
	want := snapshotState(t, e2, tbl2, ix2)
	got := snapshotState(t, tbl3.eng, tbl3, ix3)
	if len(got) != len(want) {
		t.Fatalf("double recovery diverged: %v vs %v", got, want)
	}
	for k, v := range want {
		if got[k] != v {
			t.Fatalf("double recovery key %s: %q vs %q", k, got[k], v)
		}
	}
}

func TestRecoverRandomizedHistory(t *testing.T) {
	e, tbl, ix := walTable(t)
	r := util.NewRand(99)
	model := map[string]string{}
	for step := 0; step < 800; step++ {
		k := fmt.Sprintf("k%03d", r.Intn(100))
		commit := r.Intn(4) != 0
		tx := e.Begin()
		cur, err := tbl.LookupOne(tx, ix, []byte(k), true)
		if err != nil {
			t.Fatal(err)
		}
		v := fmt.Sprintf("s%d", step)
		switch {
		case cur == nil:
			_, _, err = tbl.Insert(tx, row(k, v))
		case r.Intn(10) == 0:
			err = tbl.Delete(tx, *cur)
			v = ""
		default:
			_, err = tbl.Update(tx, *cur, row(k, v))
		}
		if err != nil {
			t.Fatal(err)
		}
		if commit {
			e.Commit(tx)
			if v == "" {
				delete(model, k)
			} else {
				model[k] = v
			}
		} else {
			e.Abort(tx)
		}
	}
	_, tbl2, ix2, _ := recoverInto(t, e.LogImage())
	got := snapshotState(t, tbl2.eng, tbl2, ix2)
	if len(got) != len(model) {
		t.Fatalf("recovered %d rows, model %d", len(got), len(model))
	}
	for k, v := range model {
		if got[k] != v {
			t.Fatalf("key %s: recovered %q want %q", k, got[k], v)
		}
	}
}

// TestRecoverCrashDuringBackgroundMerge crashes the engine at the
// documented merge crash point (inputs consumed, merged partition neither
// built nor installed) and replays the WAL into a fresh engine. Recovery
// must reconstruct exactly the committed state — a merge is pure
// reorganization, so a crash at ANY point inside it must be invisible —
// and the recovered tree must survive a subsequent full merge unchanged.
func TestRecoverCrashDuringBackgroundMerge(t *testing.T) {
	e, tbl, ix := walTable(t)
	model := map[string]string{}

	// Three rounds of committed churn, each evicted into its own
	// partition, so the merge has real multi-partition chains to collapse:
	// inserts, updates and deletes of the same keys across partitions.
	for round := 0; round < 3; round++ {
		for i := 0; i < 20; i++ {
			k := fmt.Sprintf("k%03d", i)
			v := fmt.Sprintf("r%d", round)
			tx := e.Begin()
			cur, err := tbl.LookupOne(tx, ix, []byte(k), true)
			if err != nil {
				t.Fatal(err)
			}
			switch {
			case cur == nil:
				_, _, err = tbl.Insert(tx, row(k, v))
				model[k] = v
			case round == 1 && i%5 == 0:
				err = tbl.Delete(tx, *cur)
				delete(model, k)
			default:
				_, err = tbl.Update(tx, *cur, row(k, v))
				model[k] = v
			}
			if err != nil {
				t.Fatal(err)
			}
			e.Commit(tx)
		}
		if err := ix.MV().EvictPN(); err != nil {
			t.Fatal(err)
		}
	}
	if n := ix.MV().NumPartitions(); n < 2 {
		t.Fatalf("setup built %d partitions, need >= 2 for a merge", n)
	}

	// An in-flight writer at crash time: its ops may reach the log image
	// via earlier flushes but must be discarded by recovery.
	dangling := e.Begin()
	if _, _, err := tbl.Insert(dangling, row("zzz", "lost")); err != nil {
		t.Fatal(err)
	}

	var img []byte
	fired := false
	ix.MV().SetMergeTestHook(func() {
		fired = true
		img = e.LogImage()
		e.Crash()
	})
	if err := ix.MV().MergePartitions(); err != nil {
		t.Fatal(err)
	}
	if !fired {
		t.Fatal("merge test hook never fired")
	}

	e2, tbl2, ix2, applied := recoverInto(t, img)
	if applied == 0 {
		t.Fatal("recovery applied no transactions")
	}
	got := snapshotState(t, e2, tbl2, ix2)
	if len(got) != len(model) {
		t.Fatalf("recovered %d rows, committed model has %d: got %v", len(got), len(model), got)
	}
	for k, v := range model {
		if got[k] != v {
			t.Fatalf("key %s: recovered %q, model %q", k, got[k], v)
		}
	}
	if _, ok := got["zzz"]; ok {
		t.Fatal("in-flight insert survived the crash")
	}

	// Harness scan invariants on the recovered index: key-ordered, no
	// duplicate keys (unique index).
	tx := e2.Begin()
	var prev string
	err := tbl2.Scan(tx, ix2, []byte("\x00"), nil, true, func(rr RowRef) bool {
		k := string(keyExtract(rr.Row))
		if prev != "" && k <= prev {
			t.Fatalf("scan out of order or duplicated: %q after %q", k, prev)
		}
		prev = k
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	e2.Commit(tx)

	// The recovered engine must be able to run the merge the crash
	// interrupted: rebuild two partitions, merge, and compare state again.
	for i := 0; i < 10; i++ {
		k := fmt.Sprintf("k%03d", i)
		tx := e2.Begin()
		cur, err := tbl2.LookupOne(tx, ix2, []byte(k), true)
		if err != nil || cur == nil {
			t.Fatalf("post-recovery lookup %s: cur=%v err=%v", k, cur, err)
		}
		if _, err := tbl2.Update(tx, *cur, row(k, "post")); err != nil {
			t.Fatal(err)
		}
		e2.Commit(tx)
		model[k] = "post"
		if i == 4 {
			if err := ix2.MV().EvictPN(); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := ix2.MV().EvictPN(); err != nil {
		t.Fatal(err)
	}
	if err := ix2.MV().MergePartitions(); err != nil {
		t.Fatalf("merge after recovery: %v", err)
	}
	got = snapshotState(t, e2, tbl2, ix2)
	if len(got) != len(model) {
		t.Fatalf("post-recovery merge changed row count: %d vs %d", len(got), len(model))
	}
	for k, v := range model {
		if got[k] != v {
			t.Fatalf("post-recovery merge key %s: got %q want %q", k, got[k], v)
		}
	}
}

func TestWALDisabledByDefault(t *testing.T) {
	e := NewEngine(Config{})
	if e.LogImage() != nil {
		t.Fatal("log exists without EnableWAL")
	}
	if _, err := e.Recover(nil, nil); err == nil {
		t.Fatal("Recover should fail without EnableWAL")
	}
}

// TestRecoverMidLogCorruption flips a bit in the MIDDLE of the log (not the
// torn tail): recovery must stop at the corrupt record, apply only the
// intact prefix, report how many committed transactions were dropped, and
// return a typed wal.ErrWALCorrupt instead of replaying garbage.
func TestRecoverMidLogCorruption(t *testing.T) {
	e, tbl, _ := walTable(t)
	for i, kv := range [][2]string{{"a", "1"}, {"b", "2"}, {"c", "3"}} {
		tx := e.Begin()
		if _, _, err := tbl.Insert(tx, row(kv[0], kv[1])); err != nil {
			t.Fatal(err)
		}
		e.Commit(tx)
		_ = i
	}
	img := e.LogImage()

	// Locate the end of the FIRST committed transaction, then corrupt the
	// record that follows it.
	r := wal.NewReaderFromBytes(img)
	cut := -1
	for {
		rec, ok := r.Next()
		if !ok {
			t.Fatal("log unexpectedly short")
		}
		if rec.Op == wal.OpCommit {
			cut = r.Offset()
			break
		}
	}
	img[cut+3] ^= 0x08

	e2, tbl2, ix2 := walTable(t)
	applied, err := e2.Recover(img, map[string]*Table{"accounts": tbl2})
	if !errors.Is(err, wal.ErrWALCorrupt) {
		t.Fatalf("want ErrWALCorrupt, got %v", err)
	}
	if !strings.Contains(err.Error(), "2 committed transaction(s) dropped") {
		t.Fatalf("error does not report dropped commits: %v", err)
	}
	if applied != 1 {
		t.Fatalf("applied %d txs, want 1 (the intact prefix)", applied)
	}
	got := snapshotState(t, e2, tbl2, ix2)
	if len(got) != 1 || got["a"] != "1" {
		t.Fatalf("recovered state wrong: %v", got)
	}
}

// TestRecoverTornTailIsNotCorruption: a log whose final record is torn
// (crash during an unacknowledged flush) recovers the prefix with NO error
// — nothing committed was lost.
func TestRecoverTornTailIsNotCorruption(t *testing.T) {
	e, tbl, _ := walTable(t)
	tx := e.Begin()
	tbl.Insert(tx, row("a", "1"))
	e.Commit(tx)
	img := e.LogImage()
	// Append garbage where the next flush would have landed: a torn,
	// undecodable half-record with no commit beyond it.
	r := wal.NewReaderFromBytes(img)
	for {
		if _, ok := r.Next(); !ok {
			break
		}
	}
	copy(img[r.Offset():], []byte{0x17, 0x99, 0x42})

	e2, tbl2, ix2 := walTable(t)
	applied, err := e2.Recover(img, map[string]*Table{"accounts": tbl2})
	if err != nil {
		t.Fatalf("torn tail must not be an error: %v", err)
	}
	if applied != 1 {
		t.Fatalf("applied %d, want 1", applied)
	}
	if got := snapshotState(t, e2, tbl2, ix2); got["a"] != "1" {
		t.Fatalf("state wrong: %v", got)
	}
}
