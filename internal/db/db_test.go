package db

import (
	"bytes"
	"fmt"
	"testing"

	"mvpbt/internal/heap"
	"mvpbt/internal/util"
)

// Test rows: [keyLen][key][rest]. The index key is the embedded key.
func encodeKVRow(key, val []byte) []byte {
	row := make([]byte, 0, 1+len(key)+len(val))
	row = append(row, byte(len(key)))
	row = append(row, key...)
	return append(row, val...)
}

func kvValue(row []byte) []byte { return row[1+int(row[0]):] }

func row(key, rest string) []byte { return encodeKVRow([]byte(key), []byte(rest)) }

func keyExtract(r []byte) []byte { return r[1 : 1+int(r[0])] }

type combo struct {
	name string
	hk   HeapKind
	ik   IndexKind
	rm   RefMode
}

func combos() []combo {
	return []combo{
		{"hot-btree-pr", HeapHOT, IdxBTree, RefPhysical},
		{"sias-btree-pr", HeapSIAS, IdxBTree, RefPhysical},
		{"sias-btree-lr", HeapSIAS, IdxBTree, RefLogical},
		{"sias-pbt-pr", HeapSIAS, IdxPBT, RefPhysical},
		{"sias-pbt-lr", HeapSIAS, IdxPBT, RefLogical},
		{"sias-mvpbt", HeapSIAS, IdxMVPBT, RefPhysical},
	}
}

func newTable(t *testing.T, c combo) (*Engine, *Table, *Index) {
	t.Helper()
	e := NewEngine(Config{BufferPages: 1024, PartitionBufferBytes: 1 << 22})
	tbl, err := e.NewTable("t_"+c.name, c.hk, IndexDef{
		Name: "pk", Kind: c.ik, RefMode: c.rm, Unique: true,
		BloomBits: 10, Extract: keyExtract,
	})
	if err != nil {
		t.Fatal(err)
	}
	return e, tbl, tbl.Indexes()[0]
}

func TestInsertLookupAllCombos(t *testing.T) {
	for _, c := range combos() {
		t.Run(c.name, func(t *testing.T) {
			e, tbl, ix := newTable(t, c)
			tx := e.Begin()
			for i := 0; i < 200; i++ {
				if _, _, err := tbl.Insert(tx, row(fmt.Sprintf("k%04d", i), fmt.Sprintf("v%d", i))); err != nil {
					t.Fatal(err)
				}
			}
			e.Commit(tx)
			r := e.Begin()
			defer e.Commit(r)
			for i := 0; i < 200; i += 17 {
				rr, err := tbl.LookupOne(r, ix, []byte(fmt.Sprintf("k%04d", i)), true)
				if err != nil {
					t.Fatal(err)
				}
				if rr == nil || string(kvValue(rr.Row)) != fmt.Sprintf("v%d", i) {
					t.Fatalf("key %d: %+v", i, rr)
				}
			}
			if rr, _ := tbl.LookupOne(r, ix, []byte("absent"), true); rr != nil {
				t.Fatal("absent key found")
			}
		})
	}
}

func TestUpdateVisibilityAllCombos(t *testing.T) {
	for _, c := range combos() {
		t.Run(c.name, func(t *testing.T) {
			e, tbl, ix := newTable(t, c)
			tx := e.Begin()
			_, _, err := tbl.Insert(tx, row("kA", "v0"))
			if err != nil {
				t.Fatal(err)
			}
			e.Commit(tx)

			long := e.Begin() // long-running reader pins v0

			// Three committed non-key updates.
			for i := 1; i <= 3; i++ {
				u := e.Begin()
				cur, err := tbl.LookupOne(u, ix, []byte("kA"), true)
				if err != nil || cur == nil {
					t.Fatalf("update %d: lookup %v %v", i, cur, err)
				}
				if _, err := tbl.Update(u, *cur, row("kA", fmt.Sprintf("v%d", i))); err != nil {
					t.Fatal(err)
				}
				e.Commit(u)
			}

			if rr, _ := tbl.LookupOne(long, ix, []byte("kA"), true); rr == nil || string(kvValue(rr.Row)) != "v0" {
				t.Fatalf("long reader sees %+v, want v0", rr)
			}
			fresh := e.Begin()
			if rr, _ := tbl.LookupOne(fresh, ix, []byte("kA"), true); rr == nil || string(kvValue(rr.Row)) != "v3" {
				t.Fatalf("fresh reader sees %+v, want v3", rr)
			}
			e.Commit(long)
			e.Commit(fresh)
		})
	}
}

func TestKeyUpdateAllCombos(t *testing.T) {
	for _, c := range combos() {
		t.Run(c.name, func(t *testing.T) {
			e, tbl, ix := newTable(t, c)
			tx := e.Begin()
			tbl.Insert(tx, row("key7", "payload"))
			e.Commit(tx)
			before := e.Begin()

			u := e.Begin()
			cur, _ := tbl.LookupOne(u, ix, []byte("key7"), true)
			if _, err := tbl.Update(u, *cur, row("key1", "payload")); err != nil {
				t.Fatal(err)
			}
			e.Commit(u)

			after := e.Begin()
			if rr, _ := tbl.LookupOne(after, ix, []byte("key7"), true); rr != nil {
				t.Fatalf("old key visible after key update: %+v", rr)
			}
			if rr, _ := tbl.LookupOne(after, ix, []byte("key1"), true); rr == nil {
				t.Fatal("new key invisible after key update")
			}
			if rr, _ := tbl.LookupOne(before, ix, []byte("key7"), true); rr == nil {
				t.Fatal("old snapshot lost old key")
			}
			if rr, _ := tbl.LookupOne(before, ix, []byte("key1"), true); rr != nil {
				t.Fatal("old snapshot sees new key")
			}
			e.Commit(before)
			e.Commit(after)
		})
	}
}

func TestDeleteAllCombos(t *testing.T) {
	for _, c := range combos() {
		t.Run(c.name, func(t *testing.T) {
			e, tbl, ix := newTable(t, c)
			tx := e.Begin()
			tbl.Insert(tx, row("kD", "x"))
			e.Commit(tx)
			before := e.Begin()
			d := e.Begin()
			cur, _ := tbl.LookupOne(d, ix, []byte("kD"), true)
			if err := tbl.Delete(d, *cur); err != nil {
				t.Fatal(err)
			}
			e.Commit(d)
			after := e.Begin()
			if rr, _ := tbl.LookupOne(after, ix, []byte("kD"), true); rr != nil {
				t.Fatal("deleted tuple visible")
			}
			if rr, _ := tbl.LookupOne(before, ix, []byte("kD"), true); rr == nil {
				t.Fatal("pre-delete snapshot lost tuple")
			}
			e.Commit(before)
			e.Commit(after)
		})
	}
}

func TestScanCountAllCombos(t *testing.T) {
	for _, c := range combos() {
		t.Run(c.name, func(t *testing.T) {
			e, tbl, ix := newTable(t, c)
			tx := e.Begin()
			for i := 0; i < 100; i++ {
				tbl.Insert(tx, row(fmt.Sprintf("k%04d", i), "v"))
			}
			e.Commit(tx)
			// Update a third, delete a tenth.
			u := e.Begin()
			for i := 0; i < 100; i += 3 {
				cur, _ := tbl.LookupOne(u, ix, []byte(fmt.Sprintf("k%04d", i)), true)
				tbl.Update(u, *cur, row(fmt.Sprintf("k%04d", i), "v2"))
			}
			for i := 5; i < 100; i += 10 {
				cur, _ := tbl.LookupOne(u, ix, []byte(fmt.Sprintf("k%04d", i)), true)
				tbl.Delete(u, *cur)
			}
			e.Commit(u)
			r := e.Begin()
			defer e.Commit(r)
			n, err := tbl.Count(r, ix, []byte("k0000"), []byte("k0100"))
			if err != nil {
				t.Fatal(err)
			}
			if n != 90 {
				t.Fatalf("count=%d want 90", n)
			}
		})
	}
}

func TestWriteConflictSurfaces(t *testing.T) {
	for _, c := range combos() {
		t.Run(c.name, func(t *testing.T) {
			e, tbl, ix := newTable(t, c)
			tx := e.Begin()
			tbl.Insert(tx, row("kC", "v0"))
			e.Commit(tx)
			t1 := e.Begin()
			t2 := e.Begin()
			cur1, _ := tbl.LookupOne(t1, ix, []byte("kC"), true)
			cur2, _ := tbl.LookupOne(t2, ix, []byte("kC"), true)
			if _, err := tbl.Update(t1, *cur1, row("kC", "a")); err != nil {
				t.Fatal(err)
			}
			if _, err := tbl.Update(t2, *cur2, row("kC", "b")); err != heap.ErrWriteConflict {
				t.Fatalf("want conflict, got %v", err)
			}
			e.Commit(t1)
			e.Abort(t2)
		})
	}
}

// TestSection2CostModel verifies the paper's §2 claim: with a
// version-oblivious B-Tree, COUNT(*) pays COST(index scan) + one random
// base-table read per matching tuple-version, while MV-PBT's index-only
// visibility check touches no base-table pages.
func TestSection2CostModel(t *testing.T) {
	build := func(ik IndexKind) (*Engine, *Table, *Index) {
		e := NewEngine(Config{BufferPages: 64, PartitionBufferBytes: 1 << 22})
		tbl, err := e.NewTable("r", HeapSIAS, IndexDef{
			Name: "a", Kind: ik, RefMode: RefPhysical, Unique: true, BloomBits: 10, Extract: keyExtract,
		})
		if err != nil {
			t.Fatal(err)
		}
		ix := tbl.Indexes()[0]
		// Figure 2's scenario at scale: tuples with several versions each.
		tx := e.Begin()
		for i := 0; i < 500; i++ {
			tbl.Insert(tx, row(fmt.Sprintf("a%04d", i), "v0"))
		}
		e.Commit(tx)
		for v := 1; v <= 3; v++ {
			u := e.Begin()
			for i := 0; i < 500; i++ {
				cur, _ := tbl.LookupOne(u, ix, []byte(fmt.Sprintf("a%04d", i)), true)
				if cur != nil {
					tbl.Update(u, *cur, row(fmt.Sprintf("a%04d", i), fmt.Sprintf("v%d", v)))
				}
			}
			e.Commit(u)
		}
		e.Pool.FlushAll()
		return e, tbl, ix
	}

	eb, tb, ib := build(IdxBTree)
	em, tm, im := build(IdxMVPBT)

	rb := eb.Begin()
	beforeB := eb.Pool.Stats()
	n1, err := tb.Count(rb, ib, []byte("a0000"), []byte("a9999"))
	if err != nil {
		t.Fatal(err)
	}
	tableReqsB := eb.Pool.Stats()[1].Requests - beforeB[1].Requests // ClassTable == 0? see below
	_ = tableReqsB
	eb.Commit(rb)

	rm := em.Begin()
	beforeM := em.Pool.Stats()
	n2, err := tm.Count(rm, im, []byte("a0000"), []byte("a9999"))
	if err != nil {
		t.Fatal(err)
	}
	afterM := em.Pool.Stats()
	em.Commit(rm)

	if n1 != 500 || n2 != 500 {
		t.Fatalf("counts wrong: btree=%d mvpbt=%d", n1, n2)
	}
	// MV-PBT: zero base-table page requests during the count.
	tableDelta := afterM[0].Requests - beforeM[0].Requests // sfile.ClassTable = 0
	if tableDelta != 0 {
		t.Fatalf("MV-PBT count touched %d base-table pages", tableDelta)
	}
	// B-Tree: at least one base-table request per matching version.
	afterB := eb.Pool.Stats()
	btDelta := afterB[0].Requests - beforeB[0].Requests
	if btDelta < 500 {
		t.Fatalf("B-Tree count should chain-walk the base table: %d requests", btDelta)
	}
}

func TestRandomizedCrossEngineEquivalence(t *testing.T) {
	// Drive the same committed history through all combos and require
	// identical scan results.
	type state struct {
		e   *Engine
		tbl *Table
		ix  *Index
	}
	var engines []state
	for _, c := range combos() {
		e, tbl, ix := newTable(t, c)
		engines = append(engines, state{e, tbl, ix})
	}
	r := util.NewRand(99)
	live := map[string]bool{}
	for step := 0; step < 800; step++ {
		k := fmt.Sprintf("k%03d", r.Intn(120))
		op := r.Intn(10)
		for _, s := range engines {
			tx := s.e.Begin()
			cur, err := s.tbl.LookupOne(tx, s.ix, []byte(k), true)
			if err != nil {
				t.Fatal(err)
			}
			switch {
			case cur == nil:
				s.tbl.Insert(tx, row(k, fmt.Sprintf("s%d", step)))
			case op == 0:
				s.tbl.Delete(tx, *cur)
			default:
				s.tbl.Update(tx, *cur, row(k, fmt.Sprintf("s%d", step)))
			}
			s.e.Commit(tx)
		}
		if live[k] && op == 0 {
			delete(live, k)
		} else {
			live[k] = true
		}
	}
	// Compare full scans across engines.
	var ref map[string]string
	for i, s := range engines {
		tx := s.e.Begin()
		got := map[string]string{}
		err := s.tbl.Scan(tx, s.ix, []byte("k"), []byte("l"), true, func(rr RowRef) bool {
			got[string(keyExtract(rr.Row))] = string(kvValue(rr.Row))
			return true
		})
		if err != nil {
			t.Fatal(err)
		}
		s.e.Commit(tx)
		if len(got) != len(live) {
			t.Fatalf("engine %d: %d live rows, want %d", i, len(got), len(live))
		}
		if i == 0 {
			ref = got
			continue
		}
		for k, v := range ref {
			if got[k] != v {
				t.Fatalf("engine %d diverged on %s: %q vs %q", i, k, got[k], v)
			}
		}
	}
}

func TestNoIdxVCAblation(t *testing.T) {
	// MV-PBT with NoIdxVC must return the same results through the
	// base-table path.
	e := NewEngine(Config{BufferPages: 512, PartitionBufferBytes: 1 << 22})
	tbl, err := e.NewTable("t", HeapSIAS,
		IndexDef{Name: "vc", Kind: IdxMVPBT, Unique: true, Extract: keyExtract},
		IndexDef{Name: "novc", Kind: IdxMVPBT, Unique: true, Extract: keyExtract, NoIdxVC: true},
	)
	if err != nil {
		t.Fatal(err)
	}
	tx := e.Begin()
	for i := 0; i < 50; i++ {
		tbl.Insert(tx, row(fmt.Sprintf("k%03d", i), "v"))
	}
	e.Commit(tx)
	u := e.Begin()
	for i := 0; i < 50; i += 2 {
		cur, _ := tbl.LookupOne(u, tbl.Index("vc"), []byte(fmt.Sprintf("k%03d", i)), true)
		tbl.Update(u, *cur, row(fmt.Sprintf("k%03d", i), "v2"))
	}
	e.Commit(u)
	r := e.Begin()
	defer e.Commit(r)
	n1, _ := tbl.Count(r, tbl.Index("vc"), []byte("k"), []byte("l"))
	n2, _ := tbl.Count(r, tbl.Index("novc"), []byte("k"), []byte("l"))
	if n1 != 50 || n2 != 50 {
		t.Fatalf("counts diverge: idxVC=%d noIdxVC=%d", n1, n2)
	}
}

func TestSecondaryIndexMaintenance(t *testing.T) {
	// A secondary (non-unique) MV-PBT index over the value field.
	e := NewEngine(Config{BufferPages: 512, PartitionBufferBytes: 1 << 22})
	valExtract := func(r []byte) []byte { return kvValue(r)[:2] }
	tbl, err := e.NewTable("t", HeapSIAS,
		IndexDef{Name: "pk", Kind: IdxMVPBT, Unique: true, Extract: keyExtract},
		IndexDef{Name: "sec", Kind: IdxMVPBT, Extract: valExtract},
	)
	if err != nil {
		t.Fatal(err)
	}
	tx := e.Begin()
	for i := 0; i < 30; i++ {
		grp := "g" + string(rune('0'+i%3))
		tbl.Insert(tx, row(fmt.Sprintf("k%03d", i), grp+"-rest"))
	}
	e.Commit(tx)
	r := e.Begin()
	n, _ := tbl.Count(r, tbl.Index("sec"), []byte("g0"), []byte("g1"))
	if n != 10 {
		t.Fatalf("secondary count=%d want 10", n)
	}
	e.Commit(r)
	// Move one tuple from group g0 to g2 (secondary key update).
	u := e.Begin()
	cur, _ := tbl.LookupOne(u, tbl.Index("pk"), []byte("k000"), true)
	tbl.Update(u, *cur, row("k000", "g2-rest"))
	e.Commit(u)
	r2 := e.Begin()
	defer e.Commit(r2)
	n0, _ := tbl.Count(r2, tbl.Index("sec"), []byte("g0"), []byte("g1"))
	n2, _ := tbl.Count(r2, tbl.Index("sec"), []byte("g2"), []byte("g3"))
	if n0 != 9 || n2 != 11 {
		t.Fatalf("after secondary key update: g0=%d g2=%d", n0, n2)
	}
}

var _ = bytes.Equal
