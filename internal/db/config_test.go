package db

import (
	"bytes"
	"fmt"
	"reflect"
	"testing"
)

// TestConfigIsPureValue enforces the Config copy contract (see the type
// comment): a Config assignment must be a deep copy, so the struct may
// contain no reference-typed fields — no slices, maps, pointers, funcs,
// channels or interfaces, recursively through embedded structs. Multi-engine
// instantiation (one Config templating N shard engines) depends on this; a
// new reference field must either be deep-copied in withDefaults and
// allowlisted here, or reworked into a value type.
func TestConfigIsPureValue(t *testing.T) {
	var walk func(path string, typ reflect.Type)
	walk = func(path string, typ reflect.Type) {
		switch typ.Kind() {
		case reflect.Slice, reflect.Map, reflect.Ptr, reflect.Func,
			reflect.Chan, reflect.Interface, reflect.UnsafePointer:
			t.Errorf("%s is a %s: reference-typed Config fields alias state "+
				"across engines built from one Config; deep-copy it in "+
				"withDefaults and allowlist it here", path, typ.Kind())
		case reflect.Struct:
			for i := 0; i < typ.NumField(); i++ {
				f := typ.Field(i)
				walk(path+"."+f.Name, f.Type)
			}
		case reflect.Array:
			walk(path+"[]", typ.Elem())
		}
	}
	walk("Config", reflect.TypeOf(Config{}))
}

// TestTwoEnginesFromOneConfig opens two engines from the same Config value
// and checks full independence: separate devices, WALs, transaction-id
// spaces and governor state, with writes to one invisible to the other.
// This is the regression test for the copy-sharing hazards multi-engine
// instantiation would surface if Config (or NewEngine) ever started
// sharing backing state between engines.
func TestTwoEnginesFromOneConfig(t *testing.T) {
	cfg := Config{
		BufferPages:          256,
		PartitionBufferBytes: 64 << 10,
		EnableWAL:            true,
		GroupCommit:          GroupCommitConfig{Enabled: true},
		DeviceCapacityBytes:  32 << 20,
	}
	a := NewEngine(cfg)
	defer a.Close()
	b := NewEngine(cfg)
	defer b.Close()

	if a.Dev == b.Dev || a.FM == b.FM || a.Pool == b.Pool || a.Mgr == b.Mgr ||
		a.PBuf == b.PBuf || a.Clock == b.Clock {
		t.Fatal("engines built from one Config share substrate components")
	}

	ka, err := NewMVPBTKV(a, "kv", MVPBTKVOptions{Durable: true})
	if err != nil {
		t.Fatal(err)
	}
	kb, err := NewMVPBTKV(b, "kv", MVPBTKVOptions{Durable: true})
	if err != nil {
		t.Fatal(err)
	}

	const n = 200
	for i := 0; i < n; i++ {
		key := []byte(fmt.Sprintf("a-key-%04d", i))
		if err := ka.Put(key, bytes.Repeat([]byte{'a'}, 64)); err != nil {
			t.Fatalf("put a: %v", err)
		}
	}
	// Engine B saw no writes: nothing visible, no WAL commits, no live-byte
	// growth beyond its own metadata files.
	for i := 0; i < n; i++ {
		key := []byte(fmt.Sprintf("a-key-%04d", i))
		if _, ok, err := kb.Get(key); err != nil || ok {
			t.Fatalf("engine B sees engine A's key %s (ok=%v err=%v)", key, ok, err)
		}
	}
	wa, wb := a.WALStatsSnapshot(), b.WALStatsSnapshot()
	if wa.Commits != n {
		t.Fatalf("engine A logged %d commits, want %d", wa.Commits, n)
	}
	if wb.Commits != 0 || wb.Flushes != 0 {
		t.Fatalf("engine B's WAL moved without writes: %+v", wb)
	}

	// Degrading one engine must not poison the other.
	a.ForceReadOnly(true)
	if err := ka.Put([]byte("blocked"), []byte("x")); err != ErrReadOnly {
		t.Fatalf("degraded engine A accepted a write: %v", err)
	}
	if err := kb.Put([]byte("fine"), []byte("x")); err != nil {
		t.Fatalf("healthy engine B rejected a write: %v", err)
	}
	a.ForceReadOnly(false)
	if err := ka.Put([]byte("unblocked"), []byte("x")); err != nil {
		t.Fatalf("restored engine A rejected a write: %v", err)
	}

	// Transaction-id spaces are per-engine (independent managers).
	ta, tb := a.Begin(), b.Begin()
	a.Commit(ta)
	b.Commit(tb)
	if a.Mgr == b.Mgr {
		t.Fatal("shared transaction manager")
	}
}
