package db

import (
	"bytes"

	"mvpbt/internal/heap"
	"mvpbt/internal/index"
	"mvpbt/internal/storage"
	"mvpbt/internal/txn"
)

// Scan streams the rows visible to tx whose index key is in [lo, hi)
// through fn. withRows controls whether Row payloads are fetched from the
// heap (counting/existence queries over MV-PBT can skip that entirely —
// the index-only path of §4.4).
//
// The visibility-check strategy follows the index kind:
//   - MV-PBT (unless NoIdxVC): the index returns visible entries.
//   - B-Tree / PBT / MV-PBT with NoIdxVC: the index returns candidates and
//     each one is verified against the base table (chain walks, random
//     reads), then deduplicated and rechecked against the predicate.
func (t *Table) Scan(tx *txn.Tx, ix *Index, lo, hi []byte, withRows bool, fn func(RowRef) bool) error {
	if ix.mv != nil && !ix.Def.NoIdxVC {
		return ix.mv.Scan(tx, lo, hi, func(e index.Entry) bool {
			rr := RowRef{RID: e.Ref.RID, VID: e.Ref.VID, Key: e.Key}
			if withRows {
				v, err := t.h.ReadVersion(e.Ref.RID)
				if err != nil {
					return false
				}
				rr.Row = v.Data
			}
			return fn(rr)
		})
	}
	return t.scanOblivious(tx, ix, lo, hi, fn)
}

func (t *Table) scanOblivious(tx *txn.Tx, ix *Index, lo, hi []byte, fn func(RowRef) bool) error {
	seen := make(map[storage.RecordID]bool)
	visit := func(e index.Entry) bool {
		vv, err := t.resolveVisible(tx, ix, e)
		if err != nil || vv == nil {
			return err == nil
		}
		if seen[vv.RID] {
			return true
		}
		seen[vv.RID] = true
		// Predicate recheck: the candidate entry may be stale (older or
		// newer key value than the visible version's).
		k := ix.Def.Extract(vv.Data)
		if !index.KeyInRange(k, lo, hi) {
			return true
		}
		return fn(RowRef{RID: vv.RID, VID: vv.VID, Key: k, Row: vv.Data})
	}
	switch {
	case ix.bt != nil:
		return ix.bt.ScanCandidates(lo, hi, visit)
	case ix.pb != nil:
		return ix.pb.ScanCandidates(lo, hi, visit)
	default:
		return ix.mv.ScanAllMatter(lo, hi, visit)
	}
}

// resolveVisible performs the base-table visibility check for one
// candidate (logical references resolve through the indirection layer).
func (t *Table) resolveVisible(tx *txn.Tx, ix *Index, e index.Entry) (*heap.VisibleVersion, error) {
	if ix.Def.RefMode == RefLogical && t.sias != nil {
		return t.sias.ReadVisibleByVID(tx, e.Ref.VID)
	}
	return t.h.ReadVisible(tx, e.Ref.RID)
}

// Lookup streams the visible rows with exactly this index key.
func (t *Table) Lookup(tx *txn.Tx, ix *Index, key []byte, withRows bool, fn func(RowRef) bool) error {
	if ix.mv != nil && !ix.Def.NoIdxVC {
		return ix.mv.Lookup(tx, key, func(e index.Entry) bool {
			rr := RowRef{RID: e.Ref.RID, VID: e.Ref.VID, Key: e.Key}
			if withRows {
				v, err := t.h.ReadVersion(e.Ref.RID)
				if err != nil {
					return false
				}
				rr.Row = v.Data
			}
			return fn(rr)
		})
	}
	hi := append(append([]byte(nil), key...), 0)
	seen := make(map[storage.RecordID]bool)
	visit := func(e index.Entry) bool {
		vv, err := t.resolveVisible(tx, ix, e)
		if err != nil || vv == nil {
			return err == nil
		}
		if seen[vv.RID] {
			return true
		}
		seen[vv.RID] = true
		if !bytes.Equal(ix.Def.Extract(vv.Data), key) {
			return true
		}
		return fn(RowRef{RID: vv.RID, VID: vv.VID, Key: key, Row: vv.Data})
	}
	switch {
	case ix.bt != nil:
		return ix.bt.LookupCandidates(key, visit)
	case ix.pb != nil:
		return ix.pb.LookupCandidates(key, visit)
	default:
		return ix.mv.ScanAllMatter(key, hi, visit)
	}
}

// LookupOne returns the single visible row for key (nil when absent) —
// the point-query path of unique indexes.
func (t *Table) LookupOne(tx *txn.Tx, ix *Index, key []byte, withRows bool) (*RowRef, error) {
	var out *RowRef
	err := t.Lookup(tx, ix, key, withRows, func(r RowRef) bool {
		out = &r
		return false
	})
	return out, err
}

// Count returns the number of visible rows with key in [lo, hi) — the
// paper's COUNT(*) example (Figure 2). Over MV-PBT this touches no base
// table pages at all.
func (t *Table) Count(tx *txn.Tx, ix *Index, lo, hi []byte) (int, error) {
	n := 0
	err := t.Scan(tx, ix, lo, hi, false, func(RowRef) bool {
		n++
		return true
	})
	return n, err
}
