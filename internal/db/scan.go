package db

import (
	"bytes"
	"errors"
	"fmt"

	"mvpbt/internal/heap"
	"mvpbt/internal/index"
	"mvpbt/internal/storage"
	"mvpbt/internal/txn"
)

// ctxCheck returns a per-entry cancellation probe for tx's context, or nil
// when the context can never be canceled (the Background fast path — scans
// then pay nothing). The probe stashes the context error in *stop and tells
// the index iterator to halt; the scan surfaces *stop as its result so a
// deadline-bearing Scan returns context.DeadlineExceeded instead of running
// to completion while the caller has already given up.
func ctxCheck(tx *txn.Tx, stop *error) func() bool {
	ctx := tx.Context()
	if ctx.Done() == nil {
		return nil
	}
	return func() bool {
		if err := ctx.Err(); err != nil {
			*stop = fmt.Errorf("db: scan: %w", err)
			return false
		}
		return true
	}
}

// Scan streams the rows visible to tx whose index key is in [lo, hi)
// through fn. withRows controls whether Row payloads are fetched from the
// heap (counting/existence queries over MV-PBT can skip that entirely —
// the index-only path of §4.4).
//
// The visibility-check strategy follows the index kind:
//   - MV-PBT (unless NoIdxVC): the index returns visible entries.
//   - B-Tree / PBT / MV-PBT with NoIdxVC: the index returns candidates and
//     each one is verified against the base table (chain walks, random
//     reads), then deduplicated and rechecked against the predicate.
//
// Error handling separates the two storage structures involved: an error
// from the BASE TABLE (heap page unreadable or corrupt) is always surfaced
// as-is — the heap is the source of truth and nothing can regenerate it. A
// checksum failure inside a version-oblivious INDEX is recoverable: the
// index is quarantined, rebuilt from the heap (Table.RebuildIndex) and the
// operation retried once. Rows already delivered before the first attempt
// failed are not re-delivered (the dedup set spans both attempts).
func (t *Table) Scan(tx *txn.Tx, ix *Index, lo, hi []byte, withRows bool, fn func(RowRef) bool) error {
	var ctxErr error
	check := ctxCheck(tx, &ctxErr)
	if ix.mv != nil && !ix.Def.NoIdxVC {
		var heapErr error
		err := ix.mv.Scan(tx, lo, hi, func(e index.Entry) bool {
			if check != nil && !check() {
				return false
			}
			rr := RowRef{RID: e.Ref.RID, VID: e.Ref.VID, Key: e.Key}
			if withRows {
				v, err := t.h.ReadVersion(e.Ref.RID)
				if err != nil {
					heapErr = err
					return false
				}
				rr.Row = v.Data
			}
			return fn(rr)
		})
		if heapErr != nil {
			return heapErr
		}
		if ctxErr != nil {
			return ctxErr
		}
		return err
	}
	return t.scanOblivious(tx, ix, lo, hi, fn)
}

func (t *Table) scanOblivious(tx *txn.Tx, ix *Index, lo, hi []byte, fn func(RowRef) bool) error {
	seen := make(map[storage.RecordID]bool)
	var heapErr error
	check := ctxCheck(tx, &heapErr)
	visit := func(e index.Entry) bool {
		if check != nil && !check() {
			return false
		}
		vv, err := t.resolveVisible(tx, ix, e)
		if err != nil {
			heapErr = err
			return false
		}
		if vv == nil || seen[vv.RID] {
			return true
		}
		seen[vv.RID] = true
		// Predicate recheck: the candidate entry may be stale (older or
		// newer key value than the visible version's).
		k := ix.Def.Extract(vv.Data)
		if !index.KeyInRange(k, lo, hi) {
			return true
		}
		return fn(RowRef{RID: vv.RID, VID: vv.VID, Key: k, Row: vv.Data})
	}
	run := func() error {
		heapErr = nil
		switch {
		case ix.bt != nil:
			return ix.bt.ScanCandidates(lo, hi, visit)
		case ix.pb != nil:
			return ix.pb.ScanCandidates(lo, hi, visit)
		default:
			return ix.mv.ScanAllMatter(lo, hi, visit)
		}
	}
	return t.runWithRebuild(ix, run, &heapErr)
}

// runWithRebuild executes one index read, separating heap errors (stashed
// by the visit closure in *heapErr — always hard) from index errors. A
// corrupt page inside a rebuildable index triggers one quarantine-rebuild
// and one retry; if the rebuild itself fails, the ORIGINAL corruption error
// is returned (the rebuild failure is a consequence, not the cause).
func (t *Table) runWithRebuild(ix *Index, run func() error, heapErr *error) error {
	err := run()
	if *heapErr != nil {
		return *heapErr
	}
	if err != nil && errors.Is(err, storage.ErrCorruptPage) && ix.mv == nil {
		if rerr := t.RebuildIndex(ix); rerr != nil {
			return err
		}
		if err = run(); *heapErr != nil {
			return *heapErr
		}
	}
	return err
}

// resolveVisible performs the base-table visibility check for one
// candidate (logical references resolve through the indirection layer).
func (t *Table) resolveVisible(tx *txn.Tx, ix *Index, e index.Entry) (*heap.VisibleVersion, error) {
	if ix.Def.RefMode == RefLogical && t.sias != nil {
		return t.sias.ReadVisibleByVID(tx, e.Ref.VID)
	}
	return t.h.ReadVisible(tx, e.Ref.RID)
}

// Lookup streams the visible rows with exactly this index key. Error
// handling matches Scan: heap errors are hard, a corrupt rebuildable index
// is quarantined, rebuilt and retried once.
func (t *Table) Lookup(tx *txn.Tx, ix *Index, key []byte, withRows bool, fn func(RowRef) bool) error {
	var ctxErr error
	check := ctxCheck(tx, &ctxErr)
	if ix.mv != nil && !ix.Def.NoIdxVC {
		var heapErr error
		err := ix.mv.Lookup(tx, key, func(e index.Entry) bool {
			if check != nil && !check() {
				return false
			}
			rr := RowRef{RID: e.Ref.RID, VID: e.Ref.VID, Key: e.Key}
			if withRows {
				v, err := t.h.ReadVersion(e.Ref.RID)
				if err != nil {
					heapErr = err
					return false
				}
				rr.Row = v.Data
			}
			return fn(rr)
		})
		if heapErr != nil {
			return heapErr
		}
		if ctxErr != nil {
			return ctxErr
		}
		return err
	}
	hi := append(append([]byte(nil), key...), 0)
	seen := make(map[storage.RecordID]bool)
	var heapErr error
	visit := func(e index.Entry) bool {
		if check != nil && !check() {
			heapErr = ctxErr
			return false
		}
		vv, err := t.resolveVisible(tx, ix, e)
		if err != nil {
			heapErr = err
			return false
		}
		if vv == nil || seen[vv.RID] {
			return true
		}
		seen[vv.RID] = true
		if !bytes.Equal(ix.Def.Extract(vv.Data), key) {
			return true
		}
		return fn(RowRef{RID: vv.RID, VID: vv.VID, Key: key, Row: vv.Data})
	}
	run := func() error {
		heapErr = nil
		switch {
		case ix.bt != nil:
			return ix.bt.LookupCandidates(key, visit)
		case ix.pb != nil:
			return ix.pb.LookupCandidates(key, visit)
		default:
			return ix.mv.ScanAllMatter(key, hi, visit)
		}
	}
	return t.runWithRebuild(ix, run, &heapErr)
}

// LookupOne returns the single visible row for key (nil when absent) —
// the point-query path of unique indexes.
func (t *Table) LookupOne(tx *txn.Tx, ix *Index, key []byte, withRows bool) (*RowRef, error) {
	var out *RowRef
	err := t.Lookup(tx, ix, key, withRows, func(r RowRef) bool {
		out = &r
		return false
	})
	return out, err
}

// Count returns the number of visible rows with key in [lo, hi) — the
// paper's COUNT(*) example (Figure 2). Over MV-PBT this touches no base
// table pages at all.
func (t *Table) Count(tx *txn.Tx, ix *Index, lo, hi []byte) (int, error) {
	n := 0
	err := t.Scan(tx, ix, lo, hi, false, func(RowRef) bool {
		n++
		return true
	})
	return n, err
}
