package db

import (
	"encoding/binary"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"mvpbt/internal/heap"
	"mvpbt/internal/index/lsm"
	"mvpbt/internal/util"
)

// TestConcurrentTransfersSnapshotInvariant is the classic snapshot
// isolation test: concurrent transfers move money between accounts
// (write-write conflicts abort), while concurrent readers scan all
// balances under their snapshots — every reader must see the exact total,
// at every moment, on every engine.
func TestConcurrentTransfersSnapshotInvariant(t *testing.T) {
	for _, c := range combos() {
		t.Run(c.name, func(t *testing.T) {
			e, tbl, ix := newTable(t, c)
			const accounts = 40
			const initial = 1000

			acctRow := func(id int, balance int64) []byte {
				key := fmt.Sprintf("acct-%03d", id)
				val := make([]byte, 8)
				binary.BigEndian.PutUint64(val, uint64(balance))
				return encodeKVRow([]byte(key), val)
			}
			balanceOf := func(row []byte) int64 {
				return int64(binary.BigEndian.Uint64(kvValue(row)))
			}

			tx := e.Begin()
			for i := 0; i < accounts; i++ {
				if _, _, err := tbl.Insert(tx, acctRow(i, initial)); err != nil {
					t.Fatal(err)
				}
			}
			e.Commit(tx)

			var writerWG, readerWG sync.WaitGroup
			var conflicts, commits atomic.Int64
			stop := make(chan struct{})

			// Writers: random transfers.
			for w := 0; w < 4; w++ {
				writerWG.Add(1)
				go func(seed uint64) {
					defer writerWG.Done()
					r := util.NewRand(seed)
					for i := 0; i < 200; i++ {
						from, to := r.Intn(accounts), r.Intn(accounts)
						if from == to {
							continue
						}
						amount := int64(1 + r.Intn(50))
						tx := e.Begin()
						src, err := tbl.LookupOne(tx, ix, []byte(fmt.Sprintf("acct-%03d", from)), true)
						if err != nil || src == nil {
							e.Abort(tx)
							continue
						}
						dst, err := tbl.LookupOne(tx, ix, []byte(fmt.Sprintf("acct-%03d", to)), true)
						if err != nil || dst == nil {
							e.Abort(tx)
							continue
						}
						if _, err := tbl.Update(tx, *src, acctRow(from, balanceOf(src.Row)-amount)); err != nil {
							e.Abort(tx)
							if err == heap.ErrWriteConflict {
								conflicts.Add(1)
								continue
							}
							t.Error(err)
							return
						}
						if _, err := tbl.Update(tx, *dst, acctRow(to, balanceOf(dst.Row)+amount)); err != nil {
							e.Abort(tx)
							if err == heap.ErrWriteConflict {
								conflicts.Add(1)
								continue
							}
							t.Error(err)
							return
						}
						e.Commit(tx)
						commits.Add(1)
					}
				}(uint64(w + 100))
			}

			// Readers: the total must be constant under every snapshot.
			for rdr := 0; rdr < 2; rdr++ {
				readerWG.Add(1)
				go func() {
					defer readerWG.Done()
					for {
						select {
						case <-stop:
							return
						default:
						}
						tx := e.Begin()
						total := int64(0)
						n := 0
						err := tbl.Scan(tx, ix, []byte("acct-"), []byte("acct-~"), true, func(rr RowRef) bool {
							total += balanceOf(rr.Row)
							n++
							return true
						})
						e.Commit(tx)
						if err != nil {
							t.Error(err)
							return
						}
						if n != accounts || total != accounts*initial {
							t.Errorf("snapshot violation: %d accounts, total %d (want %d, %d)",
								n, total, accounts, accounts*initial)
							return
						}
					}
				}()
			}

			writerWG.Wait()
			close(stop)
			readerWG.Wait()

			t.Logf("commits=%d conflicts=%d", commits.Load(), conflicts.Load())
			if commits.Load() == 0 {
				t.Fatal("no transfer committed")
			}
			// Final ground truth.
			tx = e.Begin()
			total := int64(0)
			tbl.Scan(tx, ix, []byte("acct-"), []byte("acct-~"), true, func(rr RowRef) bool {
				total += balanceOf(rr.Row)
				return true
			})
			e.Commit(tx)
			if total != accounts*initial {
				t.Fatalf("money not conserved: %d", total)
			}
		})
	}
}

func TestConcurrentKVEngines(t *testing.T) {
	mk := map[string]func() KV{
		"lsm": func() KV {
			return NewLSMKV(NewEngine(Config{BufferPages: 1024}), "l", lsm.Options{MemtableBytes: 64 << 10})
		},
		"mvpbt": func() KV {
			kv, err := NewMVPBTKV(NewEngine(Config{BufferPages: 1024, PartitionBufferBytes: 128 << 10}), "m", MVPBTKVOptions{BloomBits: 10})
			if err != nil {
				t.Fatal(err)
			}
			return kv
		},
		"btree": func() KV {
			kv, err := NewBTreeKV(NewEngine(Config{BufferPages: 1024}), "b")
			if err != nil {
				t.Fatal(err)
			}
			return kv
		},
	}
	for name, make := range mk {
		t.Run(name, func(t *testing.T) {
			kv := make()
			var wg sync.WaitGroup
			for g := 0; g < 4; g++ {
				wg.Add(1)
				go func(g int) {
					defer wg.Done()
					r := util.NewRand(uint64(g + 1))
					val := []byte("payload")
					for i := 0; i < 400; i++ {
						k := []byte(fmt.Sprintf("g%d-%04d", g, r.Intn(200)))
						switch r.Intn(4) {
						case 0:
							if _, _, err := kv.Get(k); err != nil {
								t.Error(err)
								return
							}
						case 1:
							if err := kv.Delete(k); err != nil {
								t.Error(err)
								return
							}
						default:
							if err := kv.Put(k, val); err != nil {
								t.Error(err)
								return
							}
						}
					}
				}(g)
			}
			wg.Wait()
			// Each goroutine owned a disjoint key range: verify no
			// cross-contamination and scannability.
			n := 0
			if err := kv.Scan([]byte("g"), 1<<30, func(k, v []byte) bool {
				if string(v) != "payload" {
					t.Errorf("corrupted value %q at %q", v, k)
				}
				n++
				return true
			}); err != nil {
				t.Fatal(err)
			}
			if n == 0 {
				t.Fatal("nothing survived the concurrent run")
			}
		})
	}
}
