package db

import (
	"fmt"
	"sync/atomic"

	"mvpbt/internal/index"
	"mvpbt/internal/index/btree"
	"mvpbt/internal/index/lsm"
	"mvpbt/internal/index/mvpbt"
	"mvpbt/internal/maint"
	"mvpbt/internal/sfile"
	"mvpbt/internal/storage"
	"mvpbt/internal/txn"
	"mvpbt/internal/wal"
)

// KV is the key-value engine contract used by the YCSB comparison of
// Figure 15: the same workload drives a mutable B-Tree, an LSM-Tree and an
// MV-PBT-based engine.
type KV interface {
	Put(key, val []byte) error
	Get(key []byte) ([]byte, bool, error)
	Delete(key []byte) error
	// Scan streams up to limit live pairs with key >= lo in key order.
	Scan(lo []byte, limit int, fn func(key, val []byte) bool) error
}

// ---- B-Tree KV: values clustered in the tree, in-place updates
// (delete + insert in the same leaf), the WiredTiger-BTree stand-in.

// BTreeKV is a clustered B-Tree key-value store.
type BTreeKV struct {
	e *Engine
	t *btree.Tree
}

// NewBTreeKV creates a B-Tree KV engine on the engine's storage.
func NewBTreeKV(e *Engine, name string) (*BTreeKV, error) {
	t, err := btree.New(e.Pool, e.FM.Create(name, sfile.ClassIndex))
	if err != nil {
		return nil, err
	}
	return &BTreeKV{e: e, t: t}, nil
}

// Put implements KV: an existing value is replaced in place.
func (b *BTreeKV) Put(key, val []byte) error {
	if err := b.e.writeGate(); err != nil {
		return err
	}
	var old []byte
	hi := append(append([]byte(nil), key...), 0)
	if err := b.t.ScanRaw(key, hi, func(k, body []byte) bool {
		old = body
		return false
	}); err != nil {
		return err
	}
	if old != nil {
		if _, err := b.t.Delete(key, old); err != nil {
			return err
		}
	}
	return b.e.noteWriteErr(b.t.InsertEntry(key, val))
}

// Get implements KV.
func (b *BTreeKV) Get(key []byte) ([]byte, bool, error) {
	var out []byte
	hi := append(append([]byte(nil), key...), 0)
	err := b.t.ScanRaw(key, hi, func(k, body []byte) bool {
		out = body
		return false
	})
	return out, out != nil, err
}

// Delete implements KV.
func (b *BTreeKV) Delete(key []byte) error {
	if err := b.e.writeGate(); err != nil {
		return err
	}
	v, ok, err := b.Get(key)
	if err != nil || !ok {
		return err
	}
	_, err = b.t.Delete(key, v)
	return err
}

// Scan implements KV.
func (b *BTreeKV) Scan(lo []byte, limit int, fn func(key, val []byte) bool) error {
	n := 0
	return b.t.ScanRaw(lo, nil, func(k, body []byte) bool {
		if n >= limit {
			return false
		}
		n++
		return fn(k, body)
	})
}

// ---- LSM KV: the lsm.Tree is already a KV store.

// LSMKV adapts lsm.Tree to the KV contract.
type LSMKV struct {
	e *Engine
	t *lsm.Tree
}

// NewLSMKV creates an LSM KV engine on the engine's storage. With background
// maintenance enabled, memtable flushes and compactions run on the engine's
// maintenance service and Engine.Close drains them.
func NewLSMKV(e *Engine, name string, opts lsm.Options) *LSMKV {
	opts.Name = name
	t := lsm.New(e.Pool, e.FM.Create(name, sfile.ClassIndex), opts)
	if e.Maint != nil {
		t.SetFlushNotify(func() {
			e.Maint.Submit(maint.Flush, name, t.FlushPending)
		})
		e.AddCloser(t.Close)
	}
	return &LSMKV{e: e, t: t}
}

// Tree exposes the underlying LSM tree (statistics).
func (l *LSMKV) Tree() *lsm.Tree { return l.t }

// Put implements KV.
func (l *LSMKV) Put(key, val []byte) error {
	if err := l.e.writeGate(); err != nil {
		return err
	}
	return l.e.noteWriteErr(l.t.Put(key, val))
}

// Get implements KV.
func (l *LSMKV) Get(key []byte) ([]byte, bool, error) { return l.t.Get(key) }

// Delete implements KV.
func (l *LSMKV) Delete(key []byte) error {
	if err := l.e.writeGate(); err != nil {
		return err
	}
	return l.e.noteWriteErr(l.t.Delete(key))
}

// Scan implements KV.
func (l *LSMKV) Scan(lo []byte, limit int, fn func(key, val []byte) bool) error {
	n := 0
	return l.t.Scan(lo, nil, func(k, v []byte) bool {
		if n >= limit {
			return false
		}
		n++
		return fn(k, v)
	})
}

// ---- MV-PBT KV: the clustered multi-version store integration the paper
// built into WiredTiger (§5 "Comparison to LSM-Trees"): MV-PBT index
// records carry the values inline, version identity comes from synthetic
// recordIDs, and there is no separate base table — exactly an LSM-shaped
// KV engine, but with the version-aware record types and index-only
// visibility check of §4.

// MVPBTKV is the MV-PBT-based KV engine. Safe for concurrent use.
type MVPBTKV struct {
	e       *Engine
	tree    *mvpbt.Tree
	name    string
	durable bool
	rid     atomic.Uint64
}

// MVPBTKVOptions tunes the engine.
type MVPBTKVOptions struct {
	BloomBits     int
	DisableGC     bool
	MaxPartitions int
	// Durable logs every Put/Delete to the engine's WAL (requires
	// Config.EnableWAL), so KV commits go through the engine's durable
	// commit pipeline — per-commit flushes or group commit — exactly like
	// table row operations, and RecoverAll can replay the store. Engine
	// checkpoints stream the KV's visible pairs into the snapshot
	// generation alongside table rows. Off by default, preserving the
	// historical volatile behaviour of the YCSB comparison engines.
	Durable bool
}

// NewMVPBTKV creates a clustered MV-PBT KV engine on the engine's storage.
// With Durable set, name must be unique among the engine's durable KV
// stores and tables (it keys WAL records and checkpoint snapshots).
func NewMVPBTKV(e *Engine, name string, opts MVPBTKVOptions) (*MVPBTKV, error) {
	t := mvpbt.New(e.Pool, e.FM.Create(name, sfile.ClassIndex), e.PBuf, e.Mgr, mvpbt.Options{
		Name: name, Unique: true, BloomBits: opts.BloomBits,
		DisableGC: opts.DisableGC, MaxPartitions: opts.MaxPartitions,
	})
	e.wireMaint(name, t)
	kv := &MVPBTKV{e: e, tree: t, name: name, durable: opts.Durable}
	if opts.Durable {
		if e.wal == nil {
			return nil, fmt.Errorf("db: durable KV %q requires Config.EnableWAL", name)
		}
		if err := e.registerKV(kv); err != nil {
			return nil, err
		}
	}
	return kv, nil
}

// logKV appends a row-operation record for a durable KV store, emitting the
// transaction's lazy begin record first (same protocol as Table.logOp).
func (m *MVPBTKV) logKV(tx *txn.Tx, op wal.Op, key, val []byte) {
	if !m.durable || m.e.wal == nil {
		return
	}
	m.e.walMu.RLock()
	if tx.FirstWALOp() {
		m.e.wal.Append(&wal.Record{Op: wal.OpBegin, TxID: uint64(tx.ID)})
	}
	m.e.wal.Append(&wal.Record{Op: op, TxID: uint64(tx.ID), Table: m.name, Key: key, Row: val})
	m.e.walMu.RUnlock()
}

// Tree exposes the underlying MV-PBT (statistics, partition counts).
func (m *MVPBTKV) Tree() *mvpbt.Tree { return m.tree }

// nextRef fabricates the next version identity. File id 0xFFFFFF marks
// synthetic rids (never dereferenced).
func (m *MVPBTKV) nextRef() index.Ref {
	return index.Ref{RID: storage.RecordID{Page: storage.NewPageID(0xFFFFFF, m.rid.Add(1)), Slot: 0}}
}

// Put implements KV: a BLIND upsert — a regular record with the value
// inline, no read-before-write. The unique-index visibility rule (the
// newest snapshot-visible record per key decides) makes the predecessor
// reference unnecessary; this is the LSM-like write path of §5: "Updates
// in MV-PBT hit PN".
func (m *MVPBTKV) Put(key, val []byte) error {
	tx := m.e.Begin()
	if err := m.PutTx(tx, key, val); err != nil {
		m.e.Abort(tx)
		return err
	}
	return m.autocommit(tx)
}

// autocommit finishes a Put/Delete's implicit transaction through the
// durable pipeline, surfacing a WAL flush failure as a typed error
// (wrapping storage.ErrIOFault or ErrClosed) instead of panicking the
// process: a persistent device fault on one shard must degrade that shard
// — observable by the supervisor — not take the server down. The handle
// is aborted so it cannot pin the GC horizon; durability stays in doubt
// per the CommitDurable contract (restart recovery resolves it from the
// log).
func (m *MVPBTKV) autocommit(tx *txn.Tx) error {
	if err := m.e.CommitDurable(tx); err != nil {
		m.e.Abort(tx)
		return fmt.Errorf("db: autocommit: %w", err)
	}
	return nil
}

// PutTx is Put inside a caller-owned transaction: the upsert becomes
// visible to others only when the caller commits tx. The multi-shard
// router uses this to group writes to one shard under a single commit.
func (m *MVPBTKV) PutTx(tx *txn.Tx, key, val []byte) error {
	if err := m.e.writeGate(); err != nil {
		return err
	}
	if err := m.tree.InsertRegularVal(tx, key, m.nextRef(), val); err != nil {
		return m.e.noteWriteErr(err)
	}
	m.logKV(tx, wal.OpInsert, key, val)
	return nil
}

// Get implements KV.
func (m *MVPBTKV) Get(key []byte) ([]byte, bool, error) {
	tx := m.e.Begin()
	defer m.e.Commit(tx)
	return m.GetTx(tx, key)
}

// GetTx is Get at the snapshot of a caller-owned transaction.
func (m *MVPBTKV) GetTx(tx *txn.Tx, key []byte) ([]byte, bool, error) {
	var out []byte
	found := false
	err := m.tree.Lookup(tx, key, func(e index.Entry) bool {
		out = append([]byte(nil), e.Val...)
		found = true
		return false
	})
	return out, found, err
}

// Delete implements KV: a blind tombstone (no predecessor reference
// needed under unique-index visibility).
func (m *MVPBTKV) Delete(key []byte) error {
	tx := m.e.Begin()
	if err := m.DeleteTx(tx, key); err != nil {
		m.e.Abort(tx)
		return err
	}
	return m.autocommit(tx)
}

// DeleteTx is Delete inside a caller-owned transaction.
func (m *MVPBTKV) DeleteTx(tx *txn.Tx, key []byte) error {
	if err := m.e.writeGate(); err != nil {
		return err
	}
	if err := m.tree.InsertTombstone(tx, key, storage.RecordID{}); err != nil {
		return m.e.noteWriteErr(err)
	}
	m.logKV(tx, wal.OpDelete, key, nil)
	return nil
}

// Scan implements KV.
func (m *MVPBTKV) Scan(lo []byte, limit int, fn func(key, val []byte) bool) error {
	tx := m.e.Begin()
	defer m.e.Commit(tx)
	return m.ScanTx(tx, lo, limit, fn)
}

// ScanTx is Scan at the snapshot of a caller-owned transaction.
func (m *MVPBTKV) ScanTx(tx *txn.Tx, lo []byte, limit int, fn func(key, val []byte) bool) error {
	n := 0
	return m.tree.Scan(tx, lo, nil, func(e index.Entry) bool {
		if n >= limit {
			return false
		}
		n++
		return fn(e.Key, e.Val)
	})
}

var (
	_ KV = (*BTreeKV)(nil)
	_ KV = (*LSMKV)(nil)
	_ KV = (*MVPBTKV)(nil)
)
