package db

import (
	"errors"
	"fmt"
	"testing"

	"mvpbt/internal/sfile"
	"mvpbt/internal/ssd"
	"mvpbt/internal/storage"
)

// seedAndPersist loads n rows (with some updates and deletes mixed in so
// the heap holds multi-version chains), commits, and pushes everything to
// the device so subsequent reads hit the fault-injection layer.
func seedAndPersist(t *testing.T, e *Engine, tbl *Table, ix *Index, n int) map[string]string {
	t.Helper()
	want := map[string]string{}
	tx := e.Begin()
	for i := 0; i < n; i++ {
		k := fmt.Sprintf("k%04d", i)
		if _, _, err := tbl.Insert(tx, row(k, "v"+k)); err != nil {
			t.Fatal(err)
		}
		want[k] = "v" + k
	}
	e.Commit(tx)
	tx = e.Begin()
	for i := 0; i < n; i += 7 {
		k := fmt.Sprintf("k%04d", i)
		rr, err := tbl.LookupOne(tx, ix, []byte(k), true)
		if err != nil || rr == nil {
			t.Fatalf("seed lookup %s: %v %v", k, rr, err)
		}
		if i%14 == 0 {
			if err := tbl.Delete(tx, *rr); err != nil {
				t.Fatal(err)
			}
			delete(want, k)
		} else {
			if _, err := tbl.Update(tx, *rr, row(k, "u"+k)); err != nil {
				t.Fatal(err)
			}
			want[k] = "u" + k
		}
	}
	e.Commit(tx)
	if ix.PB() != nil {
		if err := ix.PB().EvictPN(); err != nil {
			t.Fatal(err)
		}
	}
	if err := e.Pool.FlushAll(); err != nil {
		t.Fatal(err)
	}
	if err := e.Pool.EvictAll(); err != nil {
		t.Fatal(err)
	}
	return want
}

func checkState(t *testing.T, e *Engine, tbl *Table, ix *Index, want map[string]string) {
	t.Helper()
	tx := e.Begin()
	defer e.Commit(tx)
	got := map[string]string{}
	if err := tbl.Scan(tx, ix, nil, nil, true, func(r RowRef) bool {
		got[string(r.Key)] = string(kvValue(r.Row))
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("scan returned %d rows, want %d", len(got), len(want))
	}
	for k, v := range want {
		if got[k] != v {
			t.Fatalf("key %s: got %q want %q", k, got[k], v)
		}
	}
}

// A bit-rotted page inside a version-oblivious index must be detected by
// the page checksum, quarantined, and the index transparently rebuilt from
// the base table — the read that hit the corruption still returns the
// correct result.
func TestCorruptIndexQuarantinedAndRebuilt(t *testing.T) {
	for _, c := range []combo{
		{"hot-btree-pr", HeapHOT, IdxBTree, RefPhysical},
		{"sias-btree-pr", HeapSIAS, IdxBTree, RefPhysical},
		{"sias-pbt-lr", HeapSIAS, IdxPBT, RefLogical},
	} {
		t.Run(c.name, func(t *testing.T) {
			e, tbl, ix := newTable(t, c)
			want := seedAndPersist(t, e, tbl, ix, 300)
			// Rot one bit in the first index page read back from the device.
			e.Dev.ArmFault(ssd.FaultRule{
				Kind: ssd.FaultBitFlip, Class: int(sfile.ClassIndex),
				ByteOffset: 777, Ops: []uint64{1},
			})
			checkState(t, e, tbl, ix, want)
			if got := tbl.Rebuilds(); got != 1 {
				t.Fatalf("rebuilds = %d, want 1", got)
			}
			if cf := e.Pool.IOStats().ChecksumFailures; cf == 0 {
				t.Fatal("checksum failure not counted")
			}
			// The rebuilt index must serve point lookups and survive further
			// writes; no second rebuild may occur now that the rot is gone.
			tx := e.Begin()
			if _, _, err := tbl.Insert(tx, row("zz-new", "fresh")); err != nil {
				t.Fatal(err)
			}
			e.Commit(tx)
			want["zz-new"] = "fresh"
			checkState(t, e, tbl, ix, want)
			if got := tbl.Rebuilds(); got != 1 {
				t.Fatalf("rebuilds after recovery = %d, want still 1", got)
			}
		})
	}
}

// Corruption in the BASE TABLE is not recoverable — there is no redundant
// structure to rebuild it from — so reads must surface the typed error
// rather than attempt a rebuild.
func TestCorruptHeapPageIsHardError(t *testing.T) {
	for _, c := range []combo{
		{"hot-btree-pr", HeapHOT, IdxBTree, RefPhysical},
		{"sias-btree-pr", HeapSIAS, IdxBTree, RefPhysical},
	} {
		t.Run(c.name, func(t *testing.T) {
			e, tbl, ix := newTable(t, c)
			seedAndPersist(t, e, tbl, ix, 300)
			e.Dev.ArmFault(ssd.FaultRule{
				Kind: ssd.FaultBitFlip, Class: int(sfile.ClassTable),
				ByteOffset: 777, Sticky: true,
			})
			tx := e.Begin()
			defer e.Commit(tx)
			err := tbl.Scan(tx, ix, nil, nil, true, func(RowRef) bool { return true })
			if !errors.Is(err, storage.ErrCorruptPage) {
				t.Fatalf("heap corruption surfaced as %v, want ErrCorruptPage", err)
			}
			if got := tbl.Rebuilds(); got != 0 {
				t.Fatalf("rebuilds = %d, want 0 (heap corruption must not trigger index rebuild)", got)
			}
		})
	}
}

// RebuildIndex refuses MV-PBT indexes: their entries carry transactional
// metadata the heap cannot reproduce.
func TestRebuildRefusesMVPBT(t *testing.T) {
	e, tbl, ix := newTable(t, combo{"sias-mvpbt", HeapSIAS, IdxMVPBT, RefPhysical})
	_ = e
	if err := tbl.RebuildIndex(ix); err == nil {
		t.Fatal("RebuildIndex accepted an MV-PBT index")
	}
}
