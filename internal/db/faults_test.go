package db

import (
	"fmt"
	"testing"

	"mvpbt/internal/util"
)

// TestAbortStorm injects a high abort rate into a randomized history:
// half of all transactions roll back after doing real work. No aborted
// effect may ever become visible, on any engine, and the surviving state
// must match a model that only applies committed transactions.
func TestAbortStorm(t *testing.T) {
	for _, c := range combos() {
		t.Run(c.name, func(t *testing.T) {
			e, tbl, ix := newTable(t, c)
			r := util.NewRand(4242)
			model := map[string]string{}
			for step := 0; step < 1200; step++ {
				k := fmt.Sprintf("k%03d", r.Intn(120))
				commit := r.Intn(2) == 0
				tx := e.Begin()
				cur, err := tbl.LookupOne(tx, ix, []byte(k), true)
				if err != nil {
					t.Fatal(err)
				}
				v := fmt.Sprintf("s%d", step)
				switch {
				case cur == nil:
					_, _, err = tbl.Insert(tx, row(k, v))
				case r.Intn(8) == 0:
					err = tbl.Delete(tx, *cur)
					v = ""
				default:
					_, err = tbl.Update(tx, *cur, row(k, v))
				}
				if err != nil {
					t.Fatal(err)
				}
				if commit {
					e.Commit(tx)
					if v == "" {
						delete(model, k)
					} else {
						model[k] = v
					}
				} else {
					e.Abort(tx)
				}
			}
			// Verify the final state matches the committed-only model.
			tx := e.Begin()
			defer e.Commit(tx)
			got := map[string]string{}
			err := tbl.Scan(tx, ix, []byte("k"), []byte("l"), true, func(rr RowRef) bool {
				got[string(keyExtract(rr.Row))] = string(kvValue(rr.Row))
				return true
			})
			if err != nil {
				t.Fatal(err)
			}
			if len(got) != len(model) {
				t.Fatalf("live rows %d, model %d", len(got), len(model))
			}
			for k, v := range model {
				if got[k] != v {
					t.Fatalf("key %s: got %q want %q", k, got[k], v)
				}
			}
		})
	}
}

// TestAbortStormWithVacuumAndEviction adds vacuum passes and forced
// MV-PBT evictions to the abort storm: garbage collection must never
// resurrect aborted effects or destroy committed ones.
func TestAbortStormWithVacuumAndEviction(t *testing.T) {
	c := combo{"sias-mvpbt", HeapSIAS, IdxMVPBT, RefPhysical}
	e, tbl, ix := newTable(t, c)
	r := util.NewRand(777)
	model := map[string]string{}
	for step := 0; step < 1500; step++ {
		k := fmt.Sprintf("k%03d", r.Intn(80))
		commit := r.Intn(3) != 0
		tx := e.Begin()
		cur, err := tbl.LookupOne(tx, ix, []byte(k), true)
		if err != nil {
			t.Fatal(err)
		}
		v := fmt.Sprintf("s%d", step)
		if cur == nil {
			_, _, err = tbl.Insert(tx, row(k, v))
		} else {
			_, err = tbl.Update(tx, *cur, row(k, v))
		}
		if err != nil {
			t.Fatal(err)
		}
		if commit {
			e.Commit(tx)
			model[k] = v
		} else {
			e.Abort(tx)
		}
		switch {
		case step%301 == 0:
			if _, err := tbl.Vacuum(); err != nil {
				t.Fatal(err)
			}
		case step%407 == 0:
			if err := ix.MV().EvictPN(); err != nil {
				t.Fatal(err)
			}
		}
	}
	tx := e.Begin()
	defer e.Commit(tx)
	for k, v := range model {
		rr, err := tbl.LookupOne(tx, ix, []byte(k), true)
		if err != nil {
			t.Fatal(err)
		}
		if rr == nil || string(kvValue(rr.Row)) != v {
			t.Fatalf("key %s wrong after GC under aborts: %+v want %q", k, rr, v)
		}
	}
}
