package bench

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"mvpbt/internal/db"
	"mvpbt/internal/server"
	"mvpbt/internal/server/shardclient"
	"mvpbt/internal/shard"
	"mvpbt/internal/ssd"
)

func init() {
	register(Experiment{
		ID:    "net",
		Title: "Sharded network front-end: clients x shards scaling, admission control under overload",
		Run:   runNet,
	})
}

// The net experiment measures the sharding tentpole end to end: closed-loop
// TCP clients issue durable autocommit SETs through mvpbt-server's wire
// protocol into a shard.Router. Two phases:
//
//  1. Scaling: shards {1,2,4} x clients {1,8,32}. Every SET is WAL-logged
//     on its owning shard, so the per-shard log device is the bottleneck;
//     N shards give N log devices charging N independent virtual clocks.
//     Composite time for a multi-shard run is wall time plus the MAX of
//     the per-shard simulated I/O times (the devices run in parallel),
//     so the ops/s column directly shows the sharding speedup.
//
//  2. Overload: one shard, many session-per-batch clients (connect, issue
//     a batch, disconnect — the shape admission control can gate). With
//     admission ON the server queues new sessions past a small concurrency
//     cap, bounding in-server concurrency; with admission OFF every
//     session is admitted at once. The p99 column shows what the cap buys.
const (
	netValLen   = 2 << 10 // value bytes per SET (dominates the WAL write)
	netBatchOps = 32      // ops per session in the overload phase
)

// netProfile is a SATA-class device: the paper's NVMe read latencies with
// 16x slower writes (~700 8KiB write IOPS). The scaling phase targets the
// I/O-bound regime — the regime sharding is for — and on the fast NVMe
// profile the durable write path is so cheap that loopback TCP and Go
// scheduling dominate the measurement instead of the device.
func netProfile() ssd.Profile {
	p := ssd.IntelP3600
	p.WriteSeq8 *= 16
	p.WriteSeq64 *= 16
	p.WriteRand8 *= 16
	p.WriteRand64 *= 16
	return p
}

// netEngine is the per-shard engine template for the experiment.
func netEngine(s Scale) db.Config {
	cfg := engineConfig(s.pick(1024, 4096), 256<<10)
	cfg.Profile = netProfile()
	cfg.EnableWAL = true
	cfg.GroupCommit = db.GroupCommitConfig{Enabled: true, MaxDelay: commitMaxDelay}
	return cfg
}

// netHarness is one served router plus the bookkeeping to measure it.
type netHarness struct {
	r         *shard.Router
	srv       *server.Server
	addr      string
	serveDone chan error
	wallStart time.Time
	simStart  []time.Duration
}

func startNetHarness(s Scale, shards int, cfg server.Config) (*netHarness, error) {
	r, err := shard.New(shard.Config{Shards: shards, Engine: netEngine(s)})
	if err != nil {
		return nil, err
	}
	cfg.Addr = "127.0.0.1:0"
	srv := server.New(r, cfg)
	addr, err := srv.Listen()
	if err != nil {
		r.Close()
		return nil, err
	}
	h := &netHarness{r: r, srv: srv, addr: addr.String(), serveDone: make(chan error, 1)}
	go func() { h.serveDone <- srv.Serve() }()
	return h, nil
}

// start begins the composite-time measurement.
func (h *netHarness) start() {
	h.wallStart = time.Now()
	h.simStart = make([]time.Duration, h.r.NumShards())
	for i := range h.simStart {
		h.simStart[i] = h.r.Shard(i).Engine.Clock.Now()
	}
}

// elapsed returns wall time plus the maximum per-shard simulated I/O time
// since start: the shards' devices are independent, so their virtual time
// passes in parallel and the slowest shard sets the pace.
func (h *netHarness) elapsed() time.Duration {
	wall := time.Since(h.wallStart)
	var maxSim time.Duration
	for i := range h.simStart {
		if d := h.r.Shard(i).Engine.Clock.Now() - h.simStart[i]; d > maxSim {
			maxSim = d
		}
	}
	return wall + maxSim
}

// stop drains the server and closes the router.
func (h *netHarness) stop() error {
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := h.srv.Drain(ctx); err != nil {
		return err
	}
	if err := <-h.serveDone; err != nil {
		return err
	}
	return h.r.Close()
}

// p99of sorts and returns the 99th percentile.
func p99of(lats []time.Duration) time.Duration {
	if len(lats) == 0 {
		return 0
	}
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	return lats[len(lats)*99/100]
}

// netScaleRun drives `clients` persistent closed-loop sessions for total
// SETs and returns composite ops/s plus wall-clock p99 per op.
func netScaleRun(s Scale, shards, clients, total int) (rate float64, p99 time.Duration, err error) {
	h, err := startNetHarness(s, shards, server.Config{
		MaxSessions:          clients + 8,
		MaxSessionsPerTenant: clients + 8,
	})
	if err != nil {
		return 0, 0, err
	}
	defer func() {
		if serr := h.stop(); err == nil {
			err = serr
		}
	}()

	per := total / clients
	total = per * clients
	val := make([]byte, netValLen)
	for i := range val {
		val[i] = byte(i)
	}
	lats := make([][]time.Duration, clients)
	var firstErr atomic.Pointer[error]

	h.start()
	var wg sync.WaitGroup
	for g := 0; g < clients; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			c, err := shardclient.Dial(h.addr, "bench")
			if err != nil {
				firstErr.CompareAndSwap(nil, &err)
				return
			}
			defer c.Close()
			l := make([]time.Duration, 0, per)
			for i := 0; i < per; i++ {
				key := []byte(fmt.Sprintf("net-%02d-%06d", g, i))
				st := time.Now()
				if err := c.Set(0, key, val); err != nil {
					firstErr.CompareAndSwap(nil, &err)
					return
				}
				l = append(l, time.Since(st))
			}
			lats[g] = l
		}(g)
	}
	wg.Wait()
	el := h.elapsed()
	if p := firstErr.Load(); p != nil {
		return 0, 0, *p
	}
	all := make([]time.Duration, 0, total)
	for _, l := range lats {
		all = append(all, l...)
	}
	return perSecond(total, el), p99of(all), nil
}

// netOverloadRun drives `workers` session-per-batch clients (connect,
// netBatchOps SETs, disconnect) against ONE shard until total ops are
// done. Admission on = queue new sessions past a cap of `cap` concurrent
// sessions; admission off = admit everything at once.
func netOverloadRun(s Scale, workers, cap, total int, admission bool) (rate float64, p99 time.Duration, m server.Metrics, err error) {
	cfg := server.Config{
		MaxSessions:          workers + 8,
		MaxSessionsPerTenant: workers + 8,
	}
	if admission {
		cfg.MaxSessions = cap
		cfg.MaxSessionsPerTenant = cap
		cfg.Admission = server.AdmitQueue
		cfg.QueueTimeout = 30 * time.Second
	}
	h, err := startNetHarness(s, 1, cfg)
	if err != nil {
		return 0, 0, m, err
	}
	defer func() {
		if serr := h.stop(); err == nil {
			err = serr
		}
	}()

	val := make([]byte, netValLen)
	var (
		seq      atomic.Int64
		done     atomic.Int64
		firstErr atomic.Pointer[error]
	)
	lats := make([][]time.Duration, workers)

	h.start()
	var wg sync.WaitGroup
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			var l []time.Duration
			for {
				batch := make([]int64, 0, netBatchOps)
				for len(batch) < netBatchOps {
					n := seq.Add(1)
					if n > int64(total) {
						break
					}
					batch = append(batch, n)
				}
				if len(batch) == 0 {
					lats[g] = l
					return
				}
				c, err := shardclient.Dial(h.addr, "bench")
				if err != nil {
					// Return the unissued ops and retry after a beat (the
					// reject path of admission control).
					if errors.Is(err, shardclient.ErrAdmission) {
						seq.Add(int64(-len(batch)))
						time.Sleep(time.Millisecond)
						continue
					}
					firstErr.CompareAndSwap(nil, &err)
					lats[g] = l
					return
				}
				for _, n := range batch {
					key := []byte(fmt.Sprintf("ov-%08d", n))
					st := time.Now()
					if err := c.Set(0, key, val); err != nil {
						firstErr.CompareAndSwap(nil, &err)
						c.Close()
						lats[g] = l
						return
					}
					l = append(l, time.Since(st))
					done.Add(1)
				}
				c.Close()
			}
		}(g)
	}
	wg.Wait()
	el := h.elapsed()
	if p := firstErr.Load(); p != nil {
		return 0, 0, m, *p
	}
	all := make([]time.Duration, 0, total)
	for _, l := range lats {
		all = append(all, l...)
	}
	return perSecond(int(done.Load()), el), p99of(all), h.srv.Metrics(), nil
}

// runNet produces the two-phase table. Columns that do not apply to a
// phase hold "-".
func runNet(s Scale) (*Result, error) {
	res := &Result{
		ID:    "net",
		Title: "Sharded network front-end (durable autocommit SETs over TCP)",
		Header: []string{"phase", "shards", "clients", "admission",
			"ops/s", "p99_us", "queued", "rejected"},
	}
	total := s.pick(3072, 16384)

	rates := map[[2]int]float64{}
	for _, shards := range []int{1, 2, 4} {
		for _, clients := range []int{1, 8, 32} {
			rate, p99, err := netScaleRun(s, shards, clients, total)
			if err != nil {
				return nil, fmt.Errorf("scale %d shards %d clients: %w", shards, clients, err)
			}
			rates[[2]int{shards, clients}] = rate
			res.Add("scale", fi(int64(shards)), fi(int64(clients)), "-",
				f1(rate), f1(float64(p99.Nanoseconds())/1e3), "-", "-")
		}
	}

	const workers = 48
	const cap = 8
	ovTotal := s.pick(3072, 12288)
	for _, admission := range []bool{false, true} {
		rate, p99, m, err := netOverloadRun(s, workers, cap, ovTotal, admission)
		if err != nil {
			return nil, fmt.Errorf("overload admission=%v: %w", admission, err)
		}
		mode := "off"
		if admission {
			mode = "on"
		}
		res.Add("overload", "1", fi(int64(workers)), mode,
			f1(rate), f1(float64(p99.Nanoseconds())/1e3),
			fi(int64(m.Queued)), fi(int64(m.Rejected)))
	}

	res.Note("scale: ops/s in composite time = wall + max per-shard simulated I/O (shard devices run in parallel); p99 is wall clock per op")
	res.Note("scale speedup at 32 clients: 4 shards = %.2fx, 2 shards = %.2fx over 1 shard",
		rates[[2]int{4, 32}]/rates[[2]int{1, 32}],
		rates[[2]int{2, 32}]/rates[[2]int{1, 32}])
	res.Note("overload: %d session-per-batch workers (%d ops/session) on 1 shard; admission on = queue sessions past a cap of %d concurrent", workers, netBatchOps, cap)
	return res, nil
}
