package bench

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"mvpbt/internal/db"
	"mvpbt/internal/index"
	"mvpbt/internal/index/mvpbt"
	"mvpbt/internal/sfile"
	"mvpbt/internal/storage"
	"mvpbt/internal/txn"
	"mvpbt/internal/util"
)

func init() {
	register(Experiment{
		ID:    "parallel",
		Title: "Concurrent read path: lookup/scan throughput vs client goroutines (one background writer)",
		Run:   runParallel,
	})
}

// ParallelHarness is a preloaded clustered MV-PBT (the KV shape of §5:
// unique index, inline values, blind writes) shared by the concurrent
// read-path benchmarks: the "parallel" experiment table and the
// BenchmarkParallelLookup / BenchmarkParallelScan wrappers in
// bench_test.go. The dataset is sized to stay buffer-resident so the
// measurement exposes lock/latch scaling, not device latency.
type ParallelHarness struct {
	Eng     *db.Engine
	Tree    *mvpbt.Tree
	Records int
	ValLen  int

	rid  atomic.Uint64
	seed atomic.Uint64
}

// NewParallelHarness builds and loads the tree: Records keys, several
// persisted partitions (the partition buffer is deliberately small during
// the load), bloom filters on.
func NewParallelHarness(s Scale) (*ParallelHarness, error) {
	h := &ParallelHarness{
		Eng:     db.NewEngine(engineConfig(s.pick(4096, 16384), s.pick(256<<10, 1<<20))),
		Records: s.pick(20000, 200000),
		ValLen:  64,
	}
	h.Tree = mvpbt.New(h.Eng.Pool, h.Eng.FM.Create("parallel", sfile.ClassIndex), h.Eng.PBuf,
		h.Eng.Mgr, mvpbt.Options{Name: "parallel", Unique: true, BloomBits: 10, MaxPartitions: 8})
	val := make([]byte, h.ValLen)
	for i := range val {
		val[i] = byte('a' + i%26)
	}
	for i := 0; i < h.Records; i++ {
		tx := h.Eng.Mgr.Begin()
		if err := h.Tree.InsertRegularVal(tx, h.key(i), h.nextRef(), val); err != nil {
			h.Eng.Mgr.Abort(tx)
			return nil, err
		}
		h.Eng.Mgr.Commit(tx)
	}
	return h, nil
}

func (h *ParallelHarness) key(i int) []byte {
	return []byte(fmt.Sprintf("user%08d", i))
}

// nextRef fabricates a synthetic version identity (file id 0xFFFFFF is
// never dereferenced), like the YCSB KV engine.
func (h *ParallelHarness) nextRef() index.Ref {
	return index.Ref{RID: storage.RecordID{Page: storage.NewPageID(0xFFFFFF, h.rid.Add(1)), Slot: 0}}
}

// NewRand hands out a distinct deterministic RNG per client goroutine.
func (h *ParallelHarness) NewRand() *util.Rand {
	return util.NewRand(0xC0FFEE + h.seed.Add(1)*0x9E3779B97F4A7C15)
}

// txBatch is the number of operations served under one snapshot before the
// client renews its transaction (keeps the GC horizon moving while not
// hammering the transaction manager once per op).
const txBatch = 128

// Client is one benchmark client: a reusable transaction renewed every
// txBatch operations.
type Client struct {
	h   *ParallelHarness
	r   *util.Rand
	tx  *txn.Tx
	ops int
}

// NewClient returns a fresh client with its own RNG.
func (h *ParallelHarness) NewClient() *Client {
	return &Client{h: h, r: h.NewRand()}
}

func (c *Client) renew() {
	if c.tx == nil || c.ops%txBatch == 0 {
		if c.tx != nil {
			c.h.Eng.Mgr.Commit(c.tx)
		}
		c.tx = c.h.Eng.Mgr.Begin()
	}
	c.ops++
}

// Close commits the client's open transaction.
func (c *Client) Close() {
	if c.tx != nil {
		c.h.Eng.Mgr.Commit(c.tx)
		c.tx = nil
	}
}

// Lookup performs one point lookup of a random existing key.
func (c *Client) Lookup() error {
	c.renew()
	key := c.h.key(c.r.Intn(c.h.Records))
	found := false
	if err := c.h.Tree.Lookup(c.tx, key, func(e index.Entry) bool {
		found = true
		return false
	}); err != nil {
		return err
	}
	_ = found // blind writers may have tombstoned the key; absence is fine
	return nil
}

// scanLimit is the number of entries a range scan consumes.
const scanLimit = 50

// Scan performs one short range scan (scanLimit entries) from a random
// start key.
func (c *Client) Scan() error {
	c.renew()
	lo := c.h.key(c.r.Intn(c.h.Records))
	n := 0
	return c.h.Tree.Scan(c.tx, lo, nil, func(e index.Entry) bool {
		n++
		return n < scanLimit
	})
}

// Put performs one blind upsert of a random existing key (the writer's
// churn: version records pile up in PN and trigger evictions/merges).
func (c *Client) Put(val []byte) error {
	c.renew()
	key := c.h.key(c.r.Intn(c.h.Records))
	return c.h.Tree.InsertRegularVal(c.tx, key, c.h.nextRef(), val)
}

// StartWriter launches the background OLTP writer goroutine; the returned
// stop function terminates it and reports how many puts it completed.
func (h *ParallelHarness) StartWriter() (stop func() int) {
	var (
		done  = make(chan struct{})
		wg    sync.WaitGroup
		puts  int
		wrVal = make([]byte, h.ValLen)
	)
	wg.Add(1)
	go func() {
		defer wg.Done()
		c := h.NewClient()
		defer c.Close()
		for {
			select {
			case <-done:
				return
			default:
			}
			if err := c.Put(wrVal); err != nil {
				return
			}
			puts++
		}
	}()
	return func() int {
		close(done)
		wg.Wait()
		return puts
	}
}

// runParallel measures wall-clock lookup and scan throughput at 1, 2, 4
// and 8 client goroutines, each run with one background writer churning
// versions — the HTAP read-path scaling table recorded in EXPERIMENTS.md.
// Wall-clock (not composite virtual) time is reported deliberately: the
// dataset is buffer-resident and the quantity under test is lock scaling.
func runParallel(s Scale) (*Result, error) {
	h, err := NewParallelHarness(s)
	if err != nil {
		return nil, err
	}
	res := &Result{
		ID:     "parallel",
		Title:  "MV-PBT read-path scaling: ops/s vs client goroutines (one background writer)",
		Header: []string{"clients", "lookup_ops/s", "lookup_speedup", "scan_ops/s", "scan_speedup"},
	}
	lookupOps := s.pick(200000, 2000000)
	scanOps := s.pick(10000, 100000)
	var lookupBase, scanBase float64
	for _, clients := range []int{1, 2, 4, 8} {
		stop := h.StartWriter()
		lookupRate, err := parallelRun(h, clients, lookupOps, (*Client).Lookup)
		if err != nil {
			return nil, err
		}
		scanRate, err := parallelRun(h, clients, scanOps, (*Client).Scan)
		stop()
		if err != nil {
			return nil, err
		}
		if clients == 1 {
			lookupBase, scanBase = lookupRate, scanRate
		}
		res.Add(fi(int64(clients)),
			f1(lookupRate), f2(lookupRate/lookupBase),
			f1(scanRate), f2(scanRate/scanBase))
	}
	res.Note("wall-clock rates, buffer-resident dataset: measures read-path lock scaling, not device latency")
	res.Note("each run shares the tree with one full-speed blind-writing goroutine (HTAP churn)")
	return res, nil
}

// parallelRun executes totalOps operations split across clients goroutines
// and returns the aggregate ops/s (wall clock).
func parallelRun(h *ParallelHarness, clients, totalOps int, op func(*Client) error) (float64, error) {
	var (
		wg    sync.WaitGroup
		first atomic.Pointer[error]
	)
	per := totalOps / clients
	start := time.Now()
	for g := 0; g < clients; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := h.NewClient()
			defer c.Close()
			for i := 0; i < per; i++ {
				if err := op(c); err != nil {
					first.CompareAndSwap(nil, &err)
					return
				}
			}
		}()
	}
	wg.Wait()
	el := time.Since(start)
	if e := first.Load(); e != nil {
		return 0, *e
	}
	return float64(per*clients) / el.Seconds(), nil
}
