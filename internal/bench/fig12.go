package bench

import (
	"fmt"
	"time"

	"mvpbt/internal/db"
	"mvpbt/internal/sfile"
	"mvpbt/internal/ssd"
	"mvpbt/internal/workload/chbench"
	"mvpbt/internal/workload/tpcc"
)

func init() {
	register(Experiment{
		ID:    "fig12a",
		Title: "CH-benchmark mixed-workload throughput (OLTP tx/min + OLAP queries/min) for B-Tree, PBT, MV-PBT and the MV-PBT ablation without GC and index-only visibility check",
		Run:   runFig12a,
	})
	register(Experiment{
		ID:    "fig12b",
		Title: "Standard vs index-only visibility check: analytical scan time vs simulated query pause (version-chain build-up)",
		Run:   runFig12b,
	})
	register(Experiment{
		ID:    "fig12c",
		Title: "Sequential write pattern of a single MV-PBT partition eviction (LBA trace)",
		Run:   runFig12c,
	})
	register(Experiment{
		ID:    "fig12d",
		Title: "Buffer requests and cache hit-rate on index vs base-table nodes (HOT, logical and physical references, PBT, MV-PBT)",
		Run:   runFig12d,
	})
}

// chConfig builds a CH-benchmark instance for one engine configuration.
func chConfig(s Scale, hk db.HeapKind, ik db.IndexKind, noVC, noGC bool) (*chbench.Bench, error) {
	eng := db.NewEngine(engineConfig(s.pick(128, 512), 128<<10))
	cfg := tpcc.Config{
		Warehouses:           1,
		CustomersPerDistrict: s.pick(40, 200),
		Items:                s.pick(200, 1000),
		Heap:                 hk,
		Index:                ik,
		RefMode:              db.RefPhysical,
		BloomBits:            10,
		PrefixLen:            8,
		DisableGC:            noGC,
	}
	b, err := chbench.New(eng, cfg)
	if err != nil {
		return nil, err
	}
	if noVC {
		for _, t := range b.AllTables() {
			for _, ix := range t.Indexes() {
				ix.Def.NoIdxVC = true
			}
		}
	}
	if err := b.Load(); err != nil {
		return nil, err
	}
	// Pre-run to reach steady state (orders/order lines exist).
	if err := b.Run(s.pick(500, 2500)); err != nil {
		return nil, err
	}
	eng.Pool.EvictAll()
	return b, nil
}

func runFig12a(s Scale) (*Result, error) {
	rounds := s.pick(4, 12)
	sleepTxns := s.pick(60, 400)
	res := &Result{
		ID:     "fig12a",
		Title:  "CH-benchmark throughput",
		Header: []string{"engine", "OLTP tx/min", "OLAP q/min"},
	}
	configs := []struct {
		name string
		hk   db.HeapKind
		ik   db.IndexKind
		noVC bool
		noGC bool
	}{
		{"BTree", db.HeapHOT, db.IdxBTree, false, false},
		{"PBT", db.HeapSIAS, db.IdxPBT, false, false},
		{"MV-PBT", db.HeapSIAS, db.IdxMVPBT, false, false},
		{"MV-PBT w/o GC+idxVC", db.HeapSIAS, db.IdxMVPBT, true, true},
	}
	for _, c := range configs {
		b, err := chConfig(s, c.hk, c.ik, c.noVC, c.noGC)
		if err != nil {
			return nil, err
		}
		// OLTP and OLAP throughput are measured per stream, as the paper
		// reports them: transaction time and query time accumulate
		// separately.
		var oltp, olap int
		var oltpTime, olapTime time.Duration
		for round := 0; round < rounds; round++ {
			snap := b.Engine().Begin()
			el, err := measure(b.Engine().Clock, func() error {
				for i := 0; i < sleepTxns; i++ {
					if i%50 == 49 {
						b.Engine().Pool.EvictAll() // periodic cache clean
					}
					if err := b.Tx(); err != nil {
						return err
					}
					oltp++
				}
				return nil
			})
			if err != nil {
				b.Engine().Abort(snap)
				return nil, err
			}
			oltpTime += el
			// The paper cleans the page cache: the analytical scan's
			// visibility checks pay cold I/O.
			b.Engine().Pool.EvictAll()
			el, err = measure(b.Engine().Clock, func() error {
				_, err := b.AnalyticalQuery(snap, round)
				return err
			})
			if err != nil {
				b.Engine().Abort(snap)
				return nil, err
			}
			olapTime += el
			olap++
			b.Engine().Commit(snap)
		}
		res.Add(c.name, f1(perMinute(oltp, oltpTime)), f2(perMinute(olap, olapTime)))
	}
	res.Note("paper: MV-PBT 2x OLAP (0.29 -> 0.61 q/min) and +15%% OLTP vs B-Tree; ablation drops OLAP by 75%%")
	return res, nil
}

func runFig12b(s Scale) (*Result, error) {
	unit := s.pick(150, 400) // OLTP transactions per 30 "seconds" of pause
	res := &Result{
		ID:     "fig12b",
		Title:  "Analytical scan time vs pause (transient version build-up)",
		Header: []string{"pause", "PBT+VC ms", "MV-PBT w/o GC ms", "MV-PBT w/ GC ms"},
	}
	type eng struct {
		name string
		b    *chbench.Bench
	}
	pbt, err := chConfig(s, db.HeapSIAS, db.IdxPBT, false, false)
	if err != nil {
		return nil, err
	}
	mvNoGC, err := chConfig(s, db.HeapSIAS, db.IdxMVPBT, false, true)
	if err != nil {
		return nil, err
	}
	mvGC, err := chConfig(s, db.HeapSIAS, db.IdxMVPBT, false, false)
	if err != nil {
		return nil, err
	}
	engines := []eng{{"pbt", pbt}, {"mv-nogc", mvNoGC}, {"mv-gc", mvGC}}
	for _, pause := range []int{30, 60, 90, 120} {
		row := []string{fi(int64(pause))}
		for _, e := range engines {
			// pg_sleep construction: snapshot first, then OLTP churn while
			// it is open, then the query under the old snapshot.
			snap := e.b.Engine().Begin()
			if err := e.b.Run(unit * pause / 30); err != nil {
				return nil, err
			}
			// Average three cold executions (the paper cleans the page
			// cache every second, so its queries run cold too).
			var total time.Duration
			const reps = 3
			for rep := 0; rep < reps; rep++ {
				e.b.Engine().Pool.EvictAll()
				el, err := measure(e.b.Engine().Clock, func() error {
					_, err := e.b.Q1OrderLineAggregate(snap)
					return err
				})
				if err != nil {
					return nil, err
				}
				total += el
			}
			e.b.Engine().Commit(snap)
			row = append(row, f2(total.Seconds()*1000/reps))
		}
		res.Rows = append(res.Rows, row)
	}
	res.Note("paper: PBT+VC degrades ~10x with pause; MV-PBT w/ GC stays near-constant")
	return res, nil
}

func runFig12c(s Scale) (*Result, error) {
	eng := db.NewEngine(engineConfig(512, 64<<20))
	tbl, err := eng.NewTable("r", db.HeapSIAS, db.IndexDef{
		Name: "pk", Kind: db.IdxMVPBT, Unique: true, BloomBits: 10, Extract: kvKeyExtract,
	})
	if err != nil {
		return nil, err
	}
	n := s.pick(20000, 100000)
	payload := make([]byte, 64)
	tx := eng.Begin()
	for i := 0; i < n; i++ {
		if _, _, err := tbl.Insert(tx, kvRow(fig3Key(i), payload)); err != nil {
			return nil, err
		}
	}
	eng.Commit(tx)
	eng.Pool.FlushAll()

	// Trace exactly one partition eviction.
	eng.Dev.SetTracing(true)
	if err := tbl.Indexes()[0].MV().EvictPN(); err != nil {
		return nil, err
	}
	eng.Dev.SetTracing(false)
	trace := eng.Dev.Trace()

	res := &Result{
		ID:     "fig12c",
		Title:  "LBA trace of one MV-PBT partition eviction",
		Header: []string{"t(ms)", "op", "LBA", "len", "seq"},
	}
	writes, seq := 0, 0
	var first, last ssd.TraceEntry
	for i, te := range trace {
		if te.Op != ssd.OpWrite {
			continue
		}
		if writes == 0 {
			first = te
		}
		last = te
		writes++
		if te.Seq {
			seq++
		}
		if i < 8 || i >= len(trace)-4 {
			res.Add(f2(te.Time.Seconds()*1000), te.Op.String(), fi(te.LBA), fi(int64(te.Len)), fmt.Sprintf("%v", te.Seq))
		}
	}
	res.Note("writes=%d sequential=%d (%.1f%%)", writes, seq, 100*float64(seq)/float64(writes))
	res.Note("LBA span %d..%d, strictly ascending append into fresh extents (the paper's horizontal-line pattern)", first.LBA, last.LBA)
	return res, nil
}

func runFig12d(s Scale) (*Result, error) {
	txns := s.pick(400, 3000)
	res := &Result{
		ID:     "fig12d",
		Title:  "Buffer requests / hit rate (index vs base-table pages) at equal work",
		Header: []string{"engine", "idx req", "idx hit%", "tbl req", "tbl hit%"},
	}
	configs := []struct {
		name string
		hk   db.HeapKind
		ik   db.IndexKind
		rm   db.RefMode
	}{
		{"BTree(HOT)", db.HeapHOT, db.IdxBTree, db.RefPhysical},
		{"BTree(SIAS/LR)", db.HeapSIAS, db.IdxBTree, db.RefLogical},
		{"BTree(SIAS/PR)", db.HeapSIAS, db.IdxBTree, db.RefPhysical},
		{"PBT", db.HeapSIAS, db.IdxPBT, db.RefPhysical},
		{"MV-PBT", db.HeapSIAS, db.IdxMVPBT, db.RefPhysical},
	}
	for _, c := range configs {
		eng := db.NewEngine(engineConfig(s.pick(96, 256), 64<<10))
		b, err := tpcc.New(eng, tpcc.Config{
			Warehouses: 1, CustomersPerDistrict: s.pick(40, 200), Items: s.pick(200, 1000),
			Heap: c.hk, Index: c.ik, RefMode: c.rm, BloomBits: 10,
		})
		if err != nil {
			return nil, err
		}
		if err := b.Load(); err != nil {
			return nil, err
		}
		eng.Pool.EvictAll()
		eng.Pool.ResetStats()
		if err := b.Run(txns); err != nil {
			return nil, err
		}
		st := eng.Pool.Stats()
		idx := st[sfile.ClassIndex]
		tbl := st[sfile.ClassTable]
		idxHit := 100 * float64(idx.Hits) / float64(max64(idx.Requests, 1))
		tblHit := 100 * float64(tbl.Hits) / float64(max64(tbl.Requests, 1))
		res.Add(c.name, fi(idx.Requests), f1(idxHit), fi(tbl.Requests), f1(tblHit))
	}
	res.Note("paper: PBT/MV-PBT issue more index-node requests (mostly buffered); MV-PBT cuts base-table requests by up to 40%%")
	return res, nil
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
