package bench

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"mvpbt/internal/db"
	"mvpbt/internal/util"
)

func init() {
	register(Experiment{
		ID:    "maint",
		Title: "Background maintenance: foreground write latency, sync vs async eviction/merge/GC",
		Run:   runMaint,
	})
}

// MaintWorkers and MaintRateMBps are the maintenance-service knobs for the
// "maint" experiment, settable from cmd/mvpbt-bench (-maint-workers,
// -maint-rate-mb). Rate 0 means unthrottled.
var (
	MaintWorkers  = 2
	MaintRateMBps = 0
)

// runMaint drives a foreground blind-upsert writer against a clustered
// MV-PBT KV with a deliberately small partition buffer, once with all
// maintenance inline on the writing goroutine (the seed behaviour) and once
// with the background service. The quantity under test is the foreground
// latency TAIL: inline eviction — and especially the partition merges it
// triggers — shows up as multi-millisecond pauses on the op that tripped
// the watermark; moved to the maintenance workers, those pauses leave the
// foreground path and only the (bounded) high-watermark stall remains. One
// writer is used deliberately: it cannot outrun the eviction drain rate, so
// the comparison isolates who pays the maintenance CPU rather than
// saturation backpressure (which stalls writers in BOTH designs).
func runMaint(s Scale) (*Result, error) {
	res := &Result{
		ID:    "maint",
		Title: "Foreground write latency: synchronous vs background maintenance",
		Header: []string{"mode", "ops/s", "p50_us", "p99_us", "p999_us", "max_us",
			"evictions", "merges", "stalls", "stall_ms", "throttle_ms"},
	}
	for _, bg := range []bool{false, true} {
		if err := maintRun(s, bg, res); err != nil {
			return nil, err
		}
	}
	res.Note("wall-clock per-op latency: simulated device time is charged to the virtual clock equally in both modes; the difference is whose goroutine pays the maintenance CPU")
	res.Note("background mode: %d workers, rate limit %d MiB/s (0 = unthrottled), stall only above the high watermark", MaintWorkers, MaintRateMBps)
	return res, nil
}

func maintRun(s Scale, bg bool, res *Result) error {
	// The partition buffer stays deliberately tiny at both scales so that
	// evictions affect >1% of ops — the p99 comparison is the point.
	cfg := engineConfig(4096, 24<<10)
	cfg.BackgroundMaint = bg
	cfg.MaintWorkers = MaintWorkers
	cfg.MaintBytesPerSec = int64(MaintRateMBps) << 20
	eng := db.NewEngine(cfg)
	if bg {
		// The default high watermark (limit+25%) gives the writer only a few
		// dozen entries of headroom — less than one job-dispatch latency — so
		// it would stall once per eviction cycle. Widen it: stalls should fire
		// only when maintenance is genuinely behind (a merge holds the tree's
		// background lock and the buffer cannot drain).
		eng.PBuf.SetWatermarks(eng.PBuf.Low(), 128<<10)
	}
	kv, err := db.NewMVPBTKV(eng, "maint", db.MVPBTKVOptions{BloomBits: 10, MaxPartitions: 32})
	if err != nil {
		return err
	}
	const writers = 1
	const keyspace = 20000
	totalOps := s.pick(20000, 200000)
	per := totalOps / writers
	val := make([]byte, 256)
	for i := range val {
		val[i] = byte('a' + i%26)
	}
	lat := make([][]time.Duration, writers)
	var (
		wg    sync.WaitGroup
		first atomic.Pointer[error]
	)
	start := time.Now()
	for g := 0; g < writers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			r := util.NewRand(uint64(0xFACADE + g*0x9E3779B9))
			ds := make([]time.Duration, 0, per)
			for i := 0; i < per; i++ {
				key := []byte(fmt.Sprintf("user%08d", r.Intn(keyspace)))
				t0 := time.Now()
				if err := kv.Put(key, val); err != nil {
					first.CompareAndSwap(nil, &err)
					return
				}
				ds = append(ds, time.Since(t0))
			}
			lat[g] = ds
		}(g)
	}
	wg.Wait()
	el := time.Since(start)
	if e := first.Load(); e != nil {
		return *e
	}
	if err := eng.Close(); err != nil {
		return err
	}
	var all []time.Duration
	for _, ds := range lat {
		all = append(all, ds...)
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	stalls, stallTime := eng.PBuf.Stalls()
	var throttle time.Duration
	if eng.Maint != nil {
		throttle = eng.Maint.Stats().Throttle
	}
	mode := "sync"
	if bg {
		mode = "background"
	}
	res.Add(mode,
		f1(perSecond(len(all), el)),
		f1(us(pctile(all, 0.50))), f1(us(pctile(all, 0.99))),
		f1(us(pctile(all, 0.999))), f1(us(all[len(all)-1])),
		fi(eng.PBuf.Evictions()), fi(kv.Tree().Stats().Merges),
		fi(stalls), f1(stallTime.Seconds()*1e3), f1(throttle.Seconds()*1e3))
	return nil
}

// pctile reads the p-quantile from a sorted duration slice.
func pctile(sorted []time.Duration, p float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	i := int(p * float64(len(sorted)-1))
	return sorted[i]
}

func us(d time.Duration) float64 { return float64(d.Nanoseconds()) / 1e3 }
