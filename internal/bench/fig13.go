package bench

import (
	"mvpbt/internal/db"
	"mvpbt/internal/index/mvpbt"
	"mvpbt/internal/workload/tpcc"
)

func init() {
	register(Experiment{
		ID:    "fig13",
		Title: "Effectiveness and size of MV-PBT partition filters (bloom and prefix-bloom)",
		Run:   runFig13,
	})
}

func runFig13(s Scale) (*Result, error) {
	eng := db.NewEngine(engineConfig(s.pick(256, 1024), 48<<10))
	b, err := tpcc.New(eng, tpcc.Config{
		Warehouses: 1, CustomersPerDistrict: s.pick(60, 300), Items: s.pick(300, 2000),
		Heap: db.HeapSIAS, Index: db.IdxMVPBT, BloomBits: 10, PrefixLen: 12,
	})
	if err != nil {
		return nil, err
	}
	if err := b.Load(); err != nil {
		return nil, err
	}
	if err := b.Run(s.pick(3000, 15000)); err != nil {
		return nil, err
	}

	var bloom, prefix mvpbt.FilterStats
	var nParts int
	var partBytes, bloomBytes, prefixBytes int64
	for _, t := range b.AllTables() {
		for _, ix := range t.Indexes() {
			mv := ix.MV()
			if mv == nil {
				continue
			}
			st := mv.Stats()
			bloom.Negatives += st.Bloom.Negatives
			bloom.Positives += st.Bloom.Positives
			bloom.FalsePositives += st.Bloom.FalsePositives
			prefix.Negatives += st.Prefix.Negatives
			prefix.Positives += st.Prefix.Positives
			prefix.FalsePositives += st.Prefix.FalsePositives
			for _, p := range mv.Partitions() {
				nParts++
				partBytes += int64(p.SizeBytes)
				if p.Filter != nil {
					bloomBytes += int64(p.Filter.SizeBytes())
				}
				if p.PFilter != nil {
					prefixBytes += int64(p.PFilter.SizeBytes())
				}
			}
		}
	}

	res := &Result{
		ID:     "fig13",
		Title:  "Partition filter effectiveness and size",
		Header: []string{"filter", "negatives%", "positives%", "false-pos%", "consults"},
	}
	pct := func(part, total int64) string {
		if total == 0 {
			return "0.0"
		}
		return f1(100 * float64(part) / float64(total))
	}
	bt := bloom.Negatives + bloom.Positives + bloom.FalsePositives
	pt := prefix.Negatives + prefix.Positives + prefix.FalsePositives
	res.Add("bloom", pct(bloom.Negatives, bt), pct(bloom.Positives, bt), pct(bloom.FalsePositives, bt), fi(bt))
	res.Add("prefix-bloom", pct(prefix.Negatives, pt), pct(prefix.Positives, pt), pct(prefix.FalsePositives, pt), fi(pt))
	if nParts > 0 {
		res.Note("avg partition %.2f KB; avg bloom %.2f KB (%.1f%% of partition); avg prefix-bloom %.2f KB",
			float64(partBytes)/float64(nParts)/1024,
			float64(bloomBytes)/float64(nParts)/1024,
			100*float64(bloomBytes)/float64(max64(partBytes, 1)),
			float64(prefixBytes)/float64(nParts)/1024)
	}
	res.Note("paper: bloom 81.8%% negatives / 0.6%% false positives; prefix-bloom 84.5%% / 10.6%%; sizes 0.57 MB and 0.36 MB per 24 MB partition")
	return res, nil
}
