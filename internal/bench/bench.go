// Package bench reproduces every table and figure of the paper's
// evaluation (§2 Figure 3, §3.7 Figure 8, §5 Figures 12–15). Each
// experiment is registered under the paper's figure id and prints the same
// rows/series the paper reports.
//
// Throughput and latency are reported in COMPOSITE time: measured CPU time
// plus the simulated I/O time charged by the flash device model (see
// DESIGN.md §4 "Virtual time"). Absolute numbers therefore differ from the
// paper's testbed; the shapes — who wins, by what factor, where curves
// cross — are the reproduction target recorded in EXPERIMENTS.md.
package bench

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"mvpbt/internal/db"
	"mvpbt/internal/simclock"
	"mvpbt/internal/ssd"
)

// Scale selects experiment sizing.
type Scale int

// Experiment scales.
const (
	// Quick runs in seconds (unit tests, testing.B smoke runs).
	Quick Scale = iota
	// Full runs the EXPERIMENTS.md configuration (minutes).
	Full
)

// pick returns q under Quick and f under Full.
func (s Scale) pick(q, f int) int {
	if s == Full {
		return f
	}
	return q
}

// Result is a rendered experiment outcome.
type Result struct {
	ID     string
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string
}

// Add appends a row of formatted cells.
func (r *Result) Add(cells ...string) {
	r.Rows = append(r.Rows, cells)
}

// Note appends a free-form annotation.
func (r *Result) Note(format string, args ...any) {
	r.Notes = append(r.Notes, fmt.Sprintf(format, args...))
}

// String renders the result as an aligned text table.
func (r *Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", r.ID, r.Title)
	widths := make([]int, len(r.Header))
	for i, h := range r.Header {
		widths[i] = len(h)
	}
	for _, row := range r.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	line(r.Header)
	for _, row := range r.Rows {
		line(row)
	}
	for _, n := range r.Notes {
		fmt.Fprintf(&b, "# %s\n", n)
	}
	return b.String()
}

// CSV renders the result as comma-separated values (header row first,
// notes as trailing comment lines) for plotting tools.
func (r *Result) CSV() string {
	var b strings.Builder
	esc := func(c string) string {
		if strings.ContainsAny(c, ",\"\n") {
			return `"` + strings.ReplaceAll(c, `"`, `""`) + `"`
		}
		return c
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteByte(',')
			}
			b.WriteString(esc(c))
		}
		b.WriteByte('\n')
	}
	line(r.Header)
	for _, row := range r.Rows {
		line(row)
	}
	for _, n := range r.Notes {
		fmt.Fprintf(&b, "# %s\n", n)
	}
	return b.String()
}

// Experiment is one registered figure/table reproduction.
type Experiment struct {
	ID    string
	Title string
	Run   func(s Scale) (*Result, error)
}

var registry = map[string]Experiment{}

func register(e Experiment) {
	registry[e.ID] = e
}

// Lookup returns the experiment with the given id.
func Lookup(id string) (Experiment, bool) {
	e, ok := registry[id]
	return e, ok
}

// All returns every experiment sorted by id.
func All() []Experiment {
	out := make([]Experiment, 0, len(registry))
	for _, e := range registry {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// measure runs work and returns composite elapsed time (CPU + simulated
// I/O) via the engine's clock.
func measure(clock *simclock.Clock, work func() error) (time.Duration, error) {
	sw := simclock.StartStopwatch(clock)
	err := work()
	return sw.Elapsed(), err
}

// perMinute converts an op count over a duration into ops/minute.
func perMinute(ops int, d time.Duration) float64 {
	if d <= 0 {
		return 0
	}
	return float64(ops) / d.Minutes()
}

// perSecond converts an op count over a duration into ops/second.
func perSecond(ops int, d time.Duration) float64 {
	if d <= 0 {
		return 0
	}
	return float64(ops) / d.Seconds()
}

func f1(v float64) string { return fmt.Sprintf("%.1f", v) }
func f2(v float64) string { return fmt.Sprintf("%.2f", v) }
func fi(v int64) string   { return fmt.Sprintf("%d", v) }

// Device is the device-zoo spec every engine-backed experiment runs on.
// The zero value is the calibrated default (the paper's enterprise NVMe);
// mvpbt-bench -device sets it from a zoo name so any figure can be
// re-measured on consumer flash, a ZNS part, or throttled cloud storage.
var Device ssd.DeviceSpec

// engineConfig builds the standard experiment engine sizing.
func engineConfig(bufferPages, pbufBytes int) db.Config {
	return db.Config{BufferPages: bufferPages, PartitionBufferBytes: pbufBytes, Device: Device}
}
