package bench

import (
	"time"

	"mvpbt/internal/db"
	"mvpbt/internal/workload/tpcc"
)

func init() {
	register(Experiment{
		ID:    "fig14a",
		Title: "TPC-C throughput vs dataset size: B-Tree(PG/HOT) vs B-Tree(SIAS, physical) vs B-Tree(SIAS, indirection)",
		Run:   runFig14a,
	})
	register(Experiment{
		ID:    "fig14b",
		Title: "TPC-C throughput vs dataset size: B-Tree(indirection) vs PBT(PR) vs PBT(LR) vs MV-PBT",
		Run:   runFig14b,
	})
	register(Experiment{
		ID:    "fig14c",
		Title: "Influence of partition filters on MV-PBT TPC-C throughput (none, bloom, bloom+prefix)",
		Run:   runFig14c,
	})
	register(Experiment{
		ID:    "fig14d",
		Title: "MV-PBT partition garbage collection on/off under TPC-C",
		Run:   runFig14d,
	})
}

// tpccThroughput loads a TPC-C database and measures the mix in tx/min
// (composite time). The buffer is FIXED while the dataset grows with the
// warehouse count — the paper's Figure 14a/b regime: small datasets fit
// the buffer, large ones do not.
func tpccThroughput(s Scale, warehouses int, cfg tpcc.Config) (float64, error) {
	// Average independent seeded runs: partition/eviction boundary effects
	// make single measurements noisy at these scales.
	reps := s.pick(2, 3)
	totalTx, totalTime := 0, time.Duration(0)
	for rep := 0; rep < reps; rep++ {
		eng := db.NewEngine(engineConfig(s.pick(256, 512), 512<<10))
		c := cfg
		c.Warehouses = warehouses
		if c.CustomersPerDistrict == 0 {
			c.CustomersPerDistrict = s.pick(60, 150)
		}
		if c.Items == 0 {
			c.Items = s.pick(300, 800)
		}
		c.Seed = uint64(1000 + rep)
		c.AutoVacuumEvery = 200
		b, err := tpcc.New(eng, c)
		if err != nil {
			return 0, err
		}
		if err := b.Load(); err != nil {
			return 0, err
		}
		// Warm-up into steady state, then measure.
		if err := b.Run(s.pick(150, 600)); err != nil {
			return 0, err
		}
		txns := s.pick(400, 2500)
		el, err := measure(eng.Clock, func() error {
			return b.Run(txns)
		})
		if err != nil {
			return 0, err
		}
		totalTx += txns
		totalTime += el
	}
	return perMinute(totalTx, totalTime), nil
}

func warehouseSweep(s Scale) []int {
	if s == Full {
		return []int{1, 2, 4, 8}
	}
	return []int{1, 2, 4}
}

func runFig14a(s Scale) (*Result, error) {
	res := &Result{
		ID:     "fig14a",
		Title:  "TPC-C tx/min vs warehouses (B-Tree variants)",
		Header: []string{"warehouses", "BTree(PG/HOT)", "BTree(SIAS/PR)", "BTree(SIAS/LR)"},
	}
	for _, w := range warehouseSweep(s) {
		row := []string{fi(int64(w))}
		for _, cfg := range []tpcc.Config{
			{Heap: db.HeapHOT, Index: db.IdxBTree, RefMode: db.RefPhysical},
			{Heap: db.HeapSIAS, Index: db.IdxBTree, RefMode: db.RefPhysical},
			{Heap: db.HeapSIAS, Index: db.IdxBTree, RefMode: db.RefLogical},
		} {
			tput, err := tpccThroughput(s, w, cfg)
			if err != nil {
				return nil, err
			}
			row = append(row, f1(tput))
		}
		res.Rows = append(res.Rows, row)
	}
	res.Note("paper: HOT wins while the buffer holds the working set; with growing datasets the indirection layer wins (+30%% over physical refs)")
	return res, nil
}

func runFig14b(s Scale) (*Result, error) {
	res := &Result{
		ID:     "fig14b",
		Title:  "TPC-C tx/min vs warehouses (indexing approaches)",
		Header: []string{"warehouses", "BTree(LR)", "PBT(PR)", "PBT(LR)", "MV-PBT"},
	}
	for _, w := range warehouseSweep(s) {
		row := []string{fi(int64(w))}
		for _, cfg := range []tpcc.Config{
			{Heap: db.HeapSIAS, Index: db.IdxBTree, RefMode: db.RefLogical},
			{Heap: db.HeapSIAS, Index: db.IdxPBT, RefMode: db.RefPhysical, BloomBits: 10, PrefixLen: 12},
			{Heap: db.HeapSIAS, Index: db.IdxPBT, RefMode: db.RefLogical, BloomBits: 10, PrefixLen: 12},
			{Heap: db.HeapSIAS, Index: db.IdxMVPBT, RefMode: db.RefPhysical, BloomBits: 10, PrefixLen: 12},
		} {
			tput, err := tpccThroughput(s, w, cfg)
			if err != nil {
				return nil, err
			}
			row = append(row, f1(tput))
		}
		res.Rows = append(res.Rows, row)
	}
	res.Note("paper: PBT robust and best; MV-PBT ~6%% below PBT under pure OLTP (short chains, larger records)")
	return res, nil
}

func runFig14c(s Scale) (*Result, error) {
	res := &Result{
		ID:     "fig14c",
		Title:  "MV-PBT TPC-C tx/min with partition filters off/bloom/bloom+prefix",
		Header: []string{"filters", "tx/min"},
	}
	configs := []struct {
		name string
		bits int
		plen int
	}{
		{"none", 0, 0},
		{"bloom", 10, 0},
		{"bloom+prefix", 10, 12},
	}
	w := s.pick(1, 2)
	for _, c := range configs {
		tput, err := tpccThroughput(s, w, tpcc.Config{
			Heap: db.HeapSIAS, Index: db.IdxMVPBT, BloomBits: c.bits, PrefixLen: c.plen,
		})
		if err != nil {
			return nil, err
		}
		res.Add(c.name, f1(tput))
	}
	res.Note("paper: bloom filters +10%%, prefix bloom another +10%%")
	return res, nil
}

func runFig14d(s Scale) (*Result, error) {
	res := &Result{
		ID:     "fig14d",
		Title:  "MV-PBT TPC-C tx/min with partition GC on/off",
		Header: []string{"GC", "tx/min"},
	}
	w := s.pick(1, 2)
	for _, c := range []struct {
		name string
		off  bool
	}{{"with GC", false}, {"without GC", true}} {
		tput, err := tpccThroughput(s, w, tpcc.Config{
			Heap: db.HeapSIAS, Index: db.IdxMVPBT, BloomBits: 10, PrefixLen: 12, DisableGC: c.off,
		})
		if err != nil {
			return nil, err
		}
		res.Add(c.name, f1(tput))
	}
	res.Note("paper: GC improves throughput by 5-17%% (limited by TPC-C's short chains)")
	return res, nil
}
