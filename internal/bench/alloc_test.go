package bench

import (
	"encoding/binary"
	"fmt"
	"testing"

	"mvpbt/internal/db"
)

// Write-hot-path allocation tracking. The benchmarks report allocs/op for
// the paths the commit pipeline optimised (run with -benchmem); the gate
// test pins the steady-state counts so a regression fails `go test`. The
// historical baselines and the current counts are recorded in
// EXPERIMENTS.md ("commit" experiment).

func newAllocKV(b *testing.B, wal bool) (*db.Engine, *db.MVPBTKV) {
	b.Helper()
	e := db.NewEngine(db.Config{EnableWAL: wal})
	kv, err := db.NewMVPBTKV(e, "alloc", db.MVPBTKVOptions{})
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < 4096; i++ {
		if err := kv.Put([]byte(fmt.Sprintf("user%08d", i)), []byte("value-payload-0123456789")); err != nil {
			b.Fatal(err)
		}
	}
	return e, kv
}

func BenchmarkAllocBeginCommit(b *testing.B) {
	e := db.NewEngine(db.Config{})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tx := e.Begin()
		e.Commit(tx)
	}
}

func BenchmarkAllocKVGet(b *testing.B) {
	_, kv := newAllocKV(b, false)
	key := []byte("user00000042")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok, err := kv.Get(key); err != nil || !ok {
			b.Fatal(ok, err)
		}
	}
}

func BenchmarkAllocKVPut(b *testing.B) {
	_, kv := newAllocKV(b, false)
	key := []byte("user00000042")
	val := []byte("value-payload-0123456789")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := kv.Put(key, val); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAllocKVPutWAL is the KV put with logging enabled. Since lazy
// begin records, the KV engine (which logs no row operations) leaves the
// WAL entirely untouched, so this matches BenchmarkAllocKVPut; it is kept
// to guard exactly that property.
func BenchmarkAllocKVPutWAL(b *testing.B) {
	_, kv := newAllocKV(b, true)
	key := []byte("user00000042")
	val := []byte("value-payload-0123456789")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := kv.Put(key, val); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAllocTableCommitWAL is the full logged write path: table insert
// (begin record + row record through the reused encode scratch) plus a
// durable commit (commit record + flush through the reused page/stream
// buffers).
func BenchmarkAllocTableCommitWAL(b *testing.B) {
	e, tbl := newAllocTable(b)
	row := make([]byte, commitRowLen)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		binary.BigEndian.PutUint64(row, uint64(i)+1)
		tx := e.Begin()
		if _, _, err := tbl.Insert(tx, row); err != nil {
			b.Fatal(err)
		}
		if err := e.CommitDurable(tx); err != nil {
			b.Fatal(err)
		}
	}
}

func newAllocTable(tb testing.TB) (*db.Engine, *db.Table) {
	tb.Helper()
	e := db.NewEngine(db.Config{EnableWAL: true})
	tbl, err := e.NewTable("alloc", db.HeapSIAS, db.IndexDef{
		Name: "pk", Kind: db.IdxMVPBT, Unique: true,
		Extract: func(row []byte) []byte { return row[:commitKeyLen] },
	})
	if err != nil {
		tb.Fatal(err)
	}
	return e, tbl
}

// TestHotPathAllocGate pins steady-state allocs/op for the write hot path.
// The limits carry a little slack over the measured values (0 / 1 / 3; see
// EXPERIMENTS.md) so incidental work — a tall skiplist tower, an amortized
// partition-buffer eviction — does not flake the gate, while a genuine +1
// allocation regression still trips it.
func TestHotPathAllocGate(t *testing.T) {
	if testing.Short() {
		t.Skip("alloc measurements under -short")
	}
	const runs = 2000

	e := db.NewEngine(db.Config{})
	got := testing.AllocsPerRun(runs, func() {
		tx := e.Begin()
		e.Commit(tx)
	})
	if got > 0.25 {
		t.Errorf("Begin+Commit: %.2f allocs/op, want 0", got)
	}

	_, kv := newAllocKVT(t, false)
	key := []byte("user00000042")
	val := []byte("value-payload-0123456789")
	got = testing.AllocsPerRun(runs, func() {
		if _, ok, err := kv.Get(key); err != nil || !ok {
			t.Fatal(ok, err)
		}
	})
	if got > 1.5 {
		t.Errorf("KV Get: %.2f allocs/op, want <=1 (the returned value copy)", got)
	}
	got = testing.AllocsPerRun(runs, func() {
		if err := kv.Put(key, val); err != nil {
			t.Fatal(err)
		}
	})
	if got > 3.5 {
		t.Errorf("KV Put: %.2f allocs/op, want <=3 (version record, key+value copy, skiplist node)", got)
	}

	_, kvw := newAllocKVT(t, true)
	got = testing.AllocsPerRun(runs, func() {
		if err := kvw.Put(key, val); err != nil {
			t.Fatal(err)
		}
	})
	if got > 3.5 {
		t.Errorf("KV Put with WAL: %.2f allocs/op, want <=3 (lazy begins: the KV engine must not touch the log)", got)
	}
}

func newAllocKVT(t *testing.T, wal bool) (*db.Engine, *db.MVPBTKV) {
	t.Helper()
	e := db.NewEngine(db.Config{EnableWAL: wal})
	kv, err := db.NewMVPBTKV(e, "alloc", db.MVPBTKVOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4096; i++ {
		if err := kv.Put([]byte(fmt.Sprintf("user%08d", i)), []byte("value-payload-0123456789")); err != nil {
			t.Fatal(err)
		}
	}
	return e, kv
}
