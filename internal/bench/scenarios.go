package bench

import (
	"fmt"

	"mvpbt/internal/db"
	"mvpbt/internal/ssd"
	"mvpbt/internal/workload/hostile"
)

func init() {
	register(Experiment{
		ID:    "scenarios",
		Title: "Hostile-workload scenario matrix: device zoo x scenario x heap layout, each cell a seeded deterministic replay",
		Run:   runScenarioMatrix,
	})
}

// runScenarioMatrix runs the hostile-workload catalogue (hot-key version
// storms, sawtooth bulk load/delete cycles, GC-horizon-pinning analytical
// snapshots, tenant-skewed admission-controlled mixes) across every device
// in the zoo and both heap layouts, one row per cell. The tenant-skew
// scenario drives a shard router over clustered MV-PBT KVs, so the heap
// layout does not apply ("-" row, run once per device). Every cell is a
// deterministic function of (device, scenario, heap, seed); the state
// hash column is the replay contract — rerunning the experiment must
// reproduce every hash bit-for-bit (make check-scenarios double-replays
// the same cells and diffs full fingerprints).
func runScenarioMatrix(s Scale) (*Result, error) {
	seed := uint64(1)
	scale := s.pick(1, 2)
	res := &Result{
		ID:    "scenarios",
		Title: "Hostile-workload scenario matrix",
		Header: []string{"device", "scenario", "heap", "commits", "typed",
			"io ops", "io ms", "detail", "hash"},
	}
	heapName := map[db.HeapKind]string{db.HeapHOT: "hot", db.HeapSIAS: "sias"}
	for _, dev := range ssd.Zoo() {
		for _, kind := range hostile.Kinds() {
			heaps := []db.HeapKind{db.HeapHOT, db.HeapSIAS}
			if kind == hostile.TenantSkew {
				heaps = []db.HeapKind{db.HeapHOT} // router KVs are heapless
			}
			for _, hk := range heaps {
				fp, err := hostile.Run(kind, hostile.Config{
					Device: dev, Seed: seed, Heap: hk, Scale: scale,
				})
				if err != nil {
					return nil, fmt.Errorf("%s on %s (heap %s): %w", kind, dev.Name, heapName[hk], err)
				}
				hn := heapName[hk]
				if kind == hostile.TenantSkew {
					hn = "-"
				}
				res.Add(dev.Name, kind.String(), hn,
					fi(fp.Committed), fi(fp.TypedErrs),
					fi(fp.Reads+fp.Writes), f1(float64(fp.IOTimeNS)/1e6),
					scenarioDetail(fp), fmt.Sprintf("%016x", fp.StateHash))
			}
		}
	}
	res.Note("seed %d, scale %d; every cell replays byte-identically from its seed (go run ./cmd/mvpbt-check -scenarios)", seed, scale)
	res.Note("detail: hot-key p99 unrelated-key lookup before->during storm; sawtooth live-bytes peak->final; snapshot-pin read-only entries/exits under the pin; tenant-skew admission queued/shed/resumed")
	return res, nil
}

// scenarioDetail renders the scenario-specific shape evidence for a cell.
func scenarioDetail(fp hostile.Fingerprint) string {
	switch fp.Kind {
	case hostile.HotKeyStorm:
		return fmt.Sprintf("p99 %.0fus->%.0fus", float64(fp.BaseP99NS)/1e3, float64(fp.StormP99NS)/1e3)
	case hostile.Sawtooth:
		return fmt.Sprintf("live %.1fMiB->%.1fMiB", float64(fp.PeakLive)/(1<<20), float64(fp.FinalLive)/(1<<20))
	case hostile.SnapshotPin:
		return fmt.Sprintf("ro %d/%d pin %d tx", fp.ROEntries, fp.ROExits, fp.PinTxs)
	case hostile.TenantSkew:
		return fmt.Sprintf("queued %d shed %d resumed %d", fp.Queued, fp.Rejected, fp.ResumedCommits)
	}
	return ""
}
