package bench

import (
	"encoding/binary"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"mvpbt/internal/db"
)

func init() {
	register(Experiment{
		ID:    "commit",
		Title: "Commit pipeline: WAL group commit off vs on (closed-loop committers)",
		Run:   runCommit,
	})
}

// The commit experiment measures the durable-commit pipeline in isolation:
// closed-loop committer goroutines each run begin → one small insert →
// CommitDurable against a WAL-logged table, with group commit off and on.
// Without group commit every committer flushes the log itself; with it a
// batch leader flushes once for many committers (DESIGN.md §11), which is
// where the throughput multiple comes from.
const (
	commitKeyLen = 16
	commitRowLen = 64
	// commitMaxDelay is the leader's batching window when group commit is
	// on: long enough for concurrent committers to pile into the batch,
	// short enough that single-client latency stays in the tens of µs.
	commitMaxDelay = 50 * time.Microsecond
)

// newCommitEngine builds a WAL-enabled engine with one SIAS table indexed
// by a unique MV-PBT primary key (the minimal shape whose row operations
// actually hit the log).
func newCommitEngine(s Scale, group bool) (*db.Engine, *db.Table, error) {
	cfg := engineConfig(s.pick(4096, 16384), 4<<20)
	cfg.EnableWAL = true
	if group {
		cfg.GroupCommit = db.GroupCommitConfig{Enabled: true, MaxDelay: commitMaxDelay}
	}
	e := db.NewEngine(cfg)
	tbl, err := e.NewTable("commits", db.HeapSIAS, db.IndexDef{
		Name:   "pk",
		Kind:   db.IdxMVPBT,
		Unique: true,
		Extract: func(row []byte) []byte {
			return row[:commitKeyLen]
		},
	})
	if err != nil {
		e.Close()
		return nil, nil, err
	}
	return e, tbl, nil
}

// commitMetrics is one cell of the commit experiment table.
type commitMetrics struct {
	rate     float64       // commits/s in composite time
	p99      time.Duration // wall-clock p99 of begin→insert→commit
	fpc      float64       // log flushes per durable commit
	avgBatch float64       // mean commits acknowledged per leader flush
	maxBatch int64         // largest batch one flush acknowledged
	allocs   float64       // heap allocations per commit (process-wide)
}

// commitRun drives `clients` closed-loop committers for ~total commits on
// a fresh engine and collects the cell's metrics. Throughput uses
// composite time (wall + simulated device time: the flush I/O is virtual);
// per-commit latency is wall clock, so the group-commit batching window
// shows up honestly as added latency.
func commitRun(s Scale, group bool, clients, total int) (commitMetrics, error) {
	e, tbl, err := newCommitEngine(s, group)
	if err != nil {
		return commitMetrics{}, err
	}
	defer e.Close()

	per := total / clients
	total = per * clients
	lats := make([][]time.Duration, clients)
	var (
		seq      atomic.Uint64
		firstErr atomic.Pointer[error]
	)

	before := e.WALStatsSnapshot()
	var ms0, ms1 runtime.MemStats
	runtime.ReadMemStats(&ms0)
	el, err := measure(e.Clock, func() error {
		var wg sync.WaitGroup
		for g := 0; g < clients; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				l := make([]time.Duration, 0, per)
				row := make([]byte, commitRowLen)
				for i := 0; i < per; i++ {
					binary.BigEndian.PutUint64(row, seq.Add(1))
					st := time.Now()
					tx := e.Begin()
					if _, _, err := tbl.Insert(tx, row); err != nil {
						e.Abort(tx)
						firstErr.CompareAndSwap(nil, &err)
						return
					}
					if err := e.CommitDurable(tx); err != nil {
						firstErr.CompareAndSwap(nil, &err)
						return
					}
					l = append(l, time.Since(st))
				}
				lats[g] = l
			}(g)
		}
		wg.Wait()
		if p := firstErr.Load(); p != nil {
			return *p
		}
		return nil
	})
	runtime.ReadMemStats(&ms1)
	if err != nil {
		return commitMetrics{}, err
	}
	after := e.WALStatsSnapshot()

	all := make([]time.Duration, 0, total)
	for _, l := range lats {
		all = append(all, l...)
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	m := commitMetrics{
		rate:   perSecond(total, el),
		p99:    all[len(all)*99/100],
		fpc:    float64(after.Flushes-before.Flushes) / float64(total),
		allocs: float64(ms1.Mallocs-ms0.Mallocs) / float64(total),
	}
	if batches := after.Group.Batches - before.Group.Batches; batches > 0 {
		m.avgBatch = float64(after.Group.Commits-before.Group.Commits) / float64(batches)
		m.maxBatch = after.Group.MaxBatched
	} else {
		m.avgBatch = 1
		m.maxBatch = 1
	}
	return m, nil
}

// runCommit produces the commit-pipeline table: group commit {off, on} ×
// {1, 8, 64} committers.
func runCommit(s Scale) (*Result, error) {
	res := &Result{
		ID:    "commit",
		Title: "Durable commit pipeline: group commit off vs on, closed-loop committers",
		Header: []string{"group", "clients", "commits/s", "p99_us",
			"flushes/commit", "avg_batch", "max_batch", "allocs/commit"},
	}
	total := s.pick(4096, 65536)
	rates := map[bool]map[int]float64{false: {}, true: {}}
	for _, group := range []bool{false, true} {
		for _, clients := range []int{1, 8, 64} {
			m, err := commitRun(s, group, clients, total)
			if err != nil {
				return nil, err
			}
			rates[group][clients] = m.rate
			mode := "off"
			if group {
				mode = "on"
			}
			res.Add(mode, fi(int64(clients)),
				f1(m.rate), f1(float64(m.p99.Nanoseconds())/1e3),
				f2(m.fpc), f1(m.avgBatch), fi(m.maxBatch), f1(m.allocs))
		}
	}
	res.Note("throughput in composite time (wall + simulated device I/O); p99 latency is wall clock and includes the %v batching window", commitMaxDelay)
	res.Note("group commit speedup at 64 committers: %.1fx", rates[true][64]/rates[false][64])
	res.Note("allocs/commit is the process-wide heap allocation delta over the run divided by commits")
	return res, nil
}
