package bench

import (
	"fmt"
	"strconv"
	"testing"
)

// The experiments ARE the reproduction; these tests pin the paper's
// qualitative claims — who wins, in which direction — at Quick scale, so
// a regression in any engine shows up as a failed shape, not just a
// changed number.

func runQ(t *testing.T, id string) *Result {
	t.Helper()
	e, ok := Lookup(id)
	if !ok {
		t.Fatalf("experiment %s not registered", id)
	}
	res, err := e.Run(Quick)
	if err != nil {
		t.Fatalf("%s: %v", id, err)
	}
	t.Logf("\n%s", res)
	return res
}

func num(t *testing.T, res *Result, row, col int) float64 {
	t.Helper()
	if row >= len(res.Rows) || col >= len(res.Rows[row]) {
		t.Fatalf("no cell %d/%d in %s", row, col, res.ID)
	}
	v, err := strconv.ParseFloat(res.Rows[row][col], 64)
	if err != nil {
		t.Fatalf("cell %d/%d of %s: %v", row, col, res.ID, err)
	}
	return v
}

// checkShape runs the experiment and applies the assertions; because the
// workloads are statistical (map iteration order and scheduling perturb
// partition boundaries between runs), a failed shape is retried once
// before the test fails.
func checkShape(t *testing.T, id string, assert func(res *Result) error) {
	t.Helper()
	e, ok := Lookup(id)
	if !ok {
		t.Fatalf("experiment %s not registered", id)
	}
	var lastErr error
	for attempt := 0; attempt < 2; attempt++ {
		res, err := e.Run(Quick)
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if lastErr = assert(res); lastErr == nil {
			if attempt > 0 {
				t.Logf("%s shape held on retry", id)
			}
			return
		}
		t.Logf("\n%s", res)
	}
	t.Fatal(lastErr)
}

// cellOf parses a numeric cell without failing the test (for assert funcs).
func cellOf(res *Result, row, col int) float64 {
	if row >= len(res.Rows) || col >= len(res.Rows[row]) {
		return 0
	}
	v, _ := strconv.ParseFloat(res.Rows[row][col], 64)
	return v
}

func TestRegistryComplete(t *testing.T) {
	want := []string{"fig3", "fig8", "fig12a", "fig12b", "fig12c", "fig12d",
		"fig13", "fig14a", "fig14b", "fig14c", "fig14d", "fig15a", "fig15b",
		"extra-wa", "extra-merge", "parallel", "maint", "commit", "net",
		"scenarios"}
	all := All()
	if len(all) != len(want) {
		t.Fatalf("registry has %d experiments, want %d", len(all), len(want))
	}
	for _, id := range want {
		if _, ok := Lookup(id); !ok {
			t.Errorf("experiment %s missing", id)
		}
	}
}

func TestFig3Shape(t *testing.T) {
	checkShape(t, "fig3", func(res *Result) error {
		last := len(res.Rows) - 1
		btree1, btree50 := cellOf(res, 0, 1), cellOf(res, last, 1)
		pbt50 := cellOf(res, last, 2)
		mvpbt1, mvpbt50 := cellOf(res, 0, 3), cellOf(res, last, 3)
		switch {
		case btree50 > 0.92*btree1:
			return fmt.Errorf("B-Tree did not degrade with chain length: %f -> %f", btree1, btree50)
		case mvpbt50 < 0.5*mvpbt1:
			return fmt.Errorf("MV-PBT not robust across chain growth: %f -> %f", mvpbt1, mvpbt50)
		case !(mvpbt50 > pbt50 && pbt50 > btree50):
			return fmt.Errorf("ordering at chain 50 wrong: mvpbt=%f pbt=%f btree=%f", mvpbt50, pbt50, btree50)
		}
		return nil
	})
}

func TestFig8MatchesPaperIOPS(t *testing.T) {
	res := runQ(t, "fig8")
	want := map[int]float64{ // row -> paper IOPS
		0: 122382, 1: 24180, 2: 112479, 3: 23631,
		4: 11104, 5: 1343, 6: 7185, 7: 56,
	}
	for row, iops := range want {
		got := num(t, res, row, 3)
		if got < iops*0.9 || got > iops*1.1 {
			t.Errorf("row %d: IOPS %f, paper %f", row, got, iops)
		}
	}
}

func TestFig12aShape(t *testing.T) {
	checkShape(t, "fig12a", func(res *Result) error {
		pbtOLAP, pbtOLTP := cellOf(res, 1, 2), cellOf(res, 1, 1)
		mvOLTP, mvOLAP := cellOf(res, 2, 1), cellOf(res, 2, 2)
		ablOLAP := cellOf(res, 3, 2)
		switch {
		case mvOLAP < 1.3*pbtOLAP:
			return fmt.Errorf("MV-PBT OLAP advantage missing: %f vs PBT %f", mvOLAP, pbtOLAP)
		case ablOLAP > 0.8*mvOLAP:
			return fmt.Errorf("ablation did not hurt OLAP: %f vs %f", ablOLAP, mvOLAP)
		case mvOLTP < 0.7*pbtOLTP:
			return fmt.Errorf("MV-PBT OLTP collapsed: %f vs PBT %f", mvOLTP, pbtOLTP)
		}
		return nil
	})
}

func TestFig12bShape(t *testing.T) {
	checkShape(t, "fig12b", func(res *Result) error {
		last := len(res.Rows) - 1
		pbtGrowth := cellOf(res, last, 1) / cellOf(res, 0, 1)
		if pbtGrowth < 1.5 {
			return fmt.Errorf("PBT+VC did not degrade with pause: growth %f", pbtGrowth)
		}
		if mvGC, pbt := cellOf(res, last, 3), cellOf(res, last, 1); mvGC > pbt {
			return fmt.Errorf("MV-PBT w/ GC slower than PBT+VC at max pause: %f vs %f ms", mvGC, pbt)
		}
		return nil
	})
}

func TestFig12cSequential(t *testing.T) {
	res := runQ(t, "fig12c")
	// The note records the sequential percentage; re-derive from rows: all
	// sample rows after the first must be sequential.
	seq := 0
	for i, row := range res.Rows {
		if i == 0 {
			continue
		}
		if row[4] == "true" {
			seq++
		}
	}
	if seq < len(res.Rows)-2 {
		t.Errorf("eviction trace not sequential: %d/%d sample rows", seq, len(res.Rows)-1)
	}
}

func TestFig12dShape(t *testing.T) {
	checkShape(t, "fig12d", func(res *Result) error {
		btreePRTbl, mvTbl := cellOf(res, 2, 3), cellOf(res, 4, 3)
		if mvTbl > 0.8*btreePRTbl {
			return fmt.Errorf("MV-PBT base-table requests not reduced: %f vs %f", mvTbl, btreePRTbl)
		}
		if cellOf(res, 4, 1) <= 0 {
			return fmt.Errorf("MV-PBT issued no index-node requests")
		}
		return nil
	})
}

func TestFig13Shape(t *testing.T) {
	checkShape(t, "fig13", func(res *Result) error {
		bloomNeg, bloomFP := cellOf(res, 0, 1), cellOf(res, 0, 3)
		pNeg := cellOf(res, 1, 1)
		switch {
		case bloomNeg < 20:
			return fmt.Errorf("bloom filters skip too little: %f%% negatives", bloomNeg)
		case bloomFP > 5:
			return fmt.Errorf("bloom false positives too high: %f%%", bloomFP)
		case pNeg < 40:
			return fmt.Errorf("prefix bloom skips too little: %f%% negatives", pNeg)
		}
		return nil
	})
}

func TestFig14aShape(t *testing.T) {
	checkShape(t, "fig14a", func(res *Result) error {
		last := len(res.Rows) - 1
		pr, lr := cellOf(res, last, 2), cellOf(res, last, 3)
		// Paper: +30% for the indirection layer (EXPERIMENTS.md asserts ≈2x
		// at full scale); quick-scale datasets can fit the buffer, where the
		// two converge.
		if lr < 0.8*pr {
			return fmt.Errorf("logical references far slower than physical: %f vs %f", lr, pr)
		}
		return nil
	})
}

func TestFig14cShape(t *testing.T) {
	checkShape(t, "fig14c", func(res *Result) error {
		none := cellOf(res, 0, 1)
		best := cellOf(res, 1, 1)
		if b := cellOf(res, 2, 1); b > best {
			best = b
		}
		// +10%/+10% is asserted at full scale; here filters must at least
		// not be catastrophic.
		if best < 0.75*none {
			return fmt.Errorf("filters regressed throughput badly: none=%f best=%f", none, best)
		}
		return nil
	})
}

func TestFig15aShape(t *testing.T) {
	checkShape(t, "fig15a", func(res *Result) error {
		lsmA, mvA := cellOf(res, 0, 2), cellOf(res, 0, 3)
		if mvA < lsmA {
			return fmt.Errorf("workload A: MV-PBT %f did not beat LSM %f", mvA, lsmA)
		}
		lsmE, mvE := cellOf(res, 3, 2), cellOf(res, 3, 3)
		if mvE < lsmE*0.6 {
			return fmt.Errorf("workload E: MV-PBT %f far below LSM %f", mvE, lsmE)
		}
		return nil
	})
}

func TestFig15bShape(t *testing.T) {
	checkShape(t, "fig15b", func(res *Result) error {
		first := cellOf(res, 0, 2)
		last := cellOf(res, len(res.Rows)-1, 2)
		if last < first || last < 2 {
			return fmt.Errorf("partition count did not grow: %f -> %f", first, last)
		}
		t0 := cellOf(res, 0, 1)
		tN := cellOf(res, len(res.Rows)-1, 1)
		if tN < t0/5 {
			return fmt.Errorf("throughput collapsed as partitions grew: %f -> %f", t0, tN)
		}
		return nil
	})
}

func TestResultRendering(t *testing.T) {
	r := &Result{ID: "x", Title: "t", Header: []string{"a", "bb"}}
	r.Add("1", "2")
	r.Note("note %d", 7)
	s := r.String()
	for _, want := range []string{"== x: t ==", "a", "bb", "# note 7"} {
		if !contains(s, want) {
			t.Errorf("rendering missing %q in %q", want, s)
		}
	}
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}

func TestExtraWAShape(t *testing.T) {
	checkShape(t, "extra-wa", func(res *Result) error {
		btree, lsm, mv := cellOf(res, 0, 3), cellOf(res, 1, 3), cellOf(res, 2, 3)
		if mv > lsm*1.2 {
			return fmt.Errorf("MV-PBT write amp %f above LSM %f", mv, lsm)
		}
		if btree < 2*lsm {
			return fmt.Errorf("B-Tree write amp %f not clearly above LSM %f", btree, lsm)
		}
		return nil
	})
}

func TestExtraMergeShape(t *testing.T) {
	checkShape(t, "extra-merge", func(res *Result) error {
		offParts, onParts := cellOf(res, 0, 1), cellOf(res, 1, 1)
		offScan, onScan := cellOf(res, 0, 3), cellOf(res, 1, 3)
		if onParts >= offParts {
			return fmt.Errorf("merging did not reduce partitions: %f vs %f", onParts, offParts)
		}
		if onScan > offScan {
			return fmt.Errorf("merging did not speed scans: %f vs %f us", onScan, offScan)
		}
		return nil
	})
}

func TestMaintShape(t *testing.T) {
	checkShape(t, "maint", func(res *Result) error {
		syncOps, bgOps := cellOf(res, 0, 1), cellOf(res, 1, 1)
		syncP99, bgP99 := cellOf(res, 0, 3), cellOf(res, 1, 3)
		syncEv, bgEv := cellOf(res, 0, 6), cellOf(res, 1, 6)
		switch {
		case syncEv == 0 || bgEv == 0:
			return fmt.Errorf("maintenance never triggered: sync=%f bg=%f evictions", syncEv, bgEv)
		case bgP99 >= syncP99:
			return fmt.Errorf("background p99 %fus did not beat sync %fus", bgP99, syncP99)
		case bgOps <= syncOps:
			return fmt.Errorf("background throughput %f did not beat sync %f", bgOps, syncOps)
		}
		return nil
	})
}

func TestNetShape(t *testing.T) {
	checkShape(t, "net", func(res *Result) error {
		// Scale phase rows 0..8 are shards {1,2,4} x clients {1,8,32};
		// rows 9..10 are the overload phase (admission off, then on).
		rate1x32, rate4x32 := cellOf(res, 2, 4), cellOf(res, 8, 4)
		if rate4x32 < 2.5*rate1x32 {
			return fmt.Errorf("4 shards at 32 clients only %.2fx over 1 shard (%f vs %f ops/s), want >=2.5x",
				rate4x32/rate1x32, rate4x32, rate1x32)
		}
		offP99, onP99 := cellOf(res, 9, 5), cellOf(res, 10, 5)
		if onP99 >= offP99 {
			return fmt.Errorf("admission control did not improve p99 under overload: on=%.1fus off=%.1fus", onP99, offP99)
		}
		if queued := cellOf(res, 10, 6); queued == 0 {
			return fmt.Errorf("admission-on run never queued a session")
		}
		return nil
	})
}

func TestResultCSV(t *testing.T) {
	r := &Result{ID: "x", Title: "t", Header: []string{"a", "b"}}
	r.Add("1", "has,comma")
	r.Note("n")
	got := r.CSV()
	want := "a,b\n1,\"has,comma\"\n# n\n"
	if got != want {
		t.Fatalf("CSV=%q want %q", got, want)
	}
}
