package bench

import (
	"fmt"

	"mvpbt/internal/db"
	"mvpbt/internal/index/lsm"
	"mvpbt/internal/workload/ycsb"
)

func init() {
	register(Experiment{
		ID:    "fig15a",
		Title: "YCSB workloads A/B/D/E: B-Tree vs LSM-Tree vs MV-PBT (thousand ops/s)",
		Run:   runFig15a,
	})
	register(Experiment{
		ID:    "fig15b",
		Title: "YCSB workload A throughput over time vs number of MV-PBT partitions",
		Run:   runFig15b,
	})
}

// ycsbEngine builds a fresh KV engine of the given kind.
func ycsbEngine(s Scale, kind string) (db.KV, *db.Engine, error) {
	switch kind {
	case "btree":
		eng := db.NewEngine(engineConfig(s.pick(192, 768), 1<<20))
		kv, err := db.NewBTreeKV(eng, "ycsb")
		return kv, eng, err
	case "lsm":
		eng := db.NewEngine(engineConfig(s.pick(192, 768), 1<<20))
		kv := db.NewLSMKV(eng, "ycsb", lsm.Options{
			MemtableBytes: s.pick(256<<10, 1<<20), L0Runs: 4, LevelRatio: 6, BloomBits: 10,
		})
		return kv, eng, nil
	case "mvpbt":
		eng := db.NewEngine(engineConfig(s.pick(192, 768), s.pick(512<<10, 2<<20)))
		kv, err := db.NewMVPBTKV(eng, "ycsb", db.MVPBTKVOptions{BloomBits: 10, MaxPartitions: 10})
		return kv, eng, err
	}
	return nil, nil, fmt.Errorf("bench: unknown kv engine %q", kind)
}

func runFig15a(s Scale) (*Result, error) {
	records := s.pick(20000, 100000)
	res := &Result{
		ID:     "fig15a",
		Title:  "YCSB throughput [thousand ops/s]",
		Header: []string{"workload", "BTree", "LSM", "MV-PBT"},
	}
	// Request counts mirror the paper's proportions (A gets 3x the
	// requests of B/D; E one fifth of B/D).
	opsFor := func(w ycsb.Workload) int {
		base := s.pick(1500, 20000)
		switch w {
		case ycsb.WorkloadA:
			return 3 * base
		case ycsb.WorkloadE:
			return base / 5
		default:
			return base
		}
	}
	for _, w := range []ycsb.Workload{ycsb.WorkloadA, ycsb.WorkloadB, ycsb.WorkloadD, ycsb.WorkloadE} {
		row := []string{string(w)}
		for _, kind := range []string{"btree", "lsm", "mvpbt"} {
			kv, eng, err := ycsbEngine(s, kind)
			if err != nil {
				return nil, err
			}
			y := ycsb.NewRunner(kv, ycsb.Config{Records: records, ValueLen: 256, Seed: 99})
			if err := y.Load(); err != nil {
				return nil, err
			}
			eng.Pool.EvictAll()
			ops := opsFor(w)
			el, err := measure(eng.Clock, func() error { return y.Run(w, ops) })
			if err != nil {
				return nil, err
			}
			row = append(row, f2(perSecond(ops, el)/1000))
		}
		res.Rows = append(res.Rows, row)
	}
	res.Note("paper: A: MV-PBT ~42%% over LSM; B/D: comparable; E: MV-PBT > LSM > BTree collapse")
	return res, nil
}

func runFig15b(s Scale) (*Result, error) {
	records := s.pick(10000, 60000)
	windows := s.pick(10, 20)
	opsPerWindow := s.pick(800, 6000)
	// No partition merging here: the figure shows the partition count
	// growing over time while throughput stays stable.
	eng := db.NewEngine(engineConfig(s.pick(192, 768), s.pick(256<<10, 1<<20)))
	kv, err := db.NewMVPBTKV(eng, "ycsb", db.MVPBTKVOptions{BloomBits: 10})
	if err != nil {
		return nil, err
	}
	mv := kv
	y := ycsb.NewRunner(kv, ycsb.Config{Records: records, ValueLen: 256, Seed: 7})
	if err := y.Load(); err != nil {
		return nil, err
	}
	res := &Result{
		ID:     "fig15b",
		Title:  "YCSB A throughput vs number of MV-PBT partitions over time",
		Header: []string{"window", "ops/s", "partitions"},
	}
	for wdw := 0; wdw < windows; wdw++ {
		el, err := measure(eng.Clock, func() error { return y.Run(ycsb.WorkloadA, opsPerWindow) })
		if err != nil {
			return nil, err
		}
		parts := mv.Tree().NumPartitions()
		res.Add(fi(int64(wdw)), f1(perSecond(opsPerWindow, el)), fi(int64(parts)))
	}
	res.Note("paper: throughput stays stable while the number of partitions grows")
	return res, nil
}
