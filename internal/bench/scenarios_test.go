package bench

import (
	"testing"

	"mvpbt/internal/db"
	"mvpbt/internal/ssd"
	"mvpbt/internal/workload/hostile"
)

// TestScenarioMatrix gates the cross-product shapes of the hostile
// scenario matrix — not just "the cells ran" but the qualitative claims
// the matrix exists to pin:
//
//  1. A hot-key version storm must not regress UNRELATED-key point-lookup
//     p99 by more than a bounded factor: the storm blows up one version
//     chain, and MV-PBT's index-only visibility must keep other keys'
//     lookups from paying for it.
//  2. On the throttled-IOPS cloud device the tenant-skew burst mix must
//     drive the governor's soft-watermark admission control: sessions
//     queue, load is shed, and commits resume after a maintenance window.
//  3. With the token bucket tightened below the workload's demand the
//     same run must accumulate device-level stalls — the throttling and
//     the admission gate are distinct mechanisms and both must engage.
func TestScenarioMatrix(t *testing.T) {
	// Gate 1: hot-key storm, both heap layouts on the calibrated device.
	// The floor keeps the ratio meaningful when the base p99 is a handful
	// of cached microseconds.
	const p99Floor = int64(25_000) // 25us
	for _, hk := range []db.HeapKind{db.HeapHOT, db.HeapSIAS} {
		fp, err := hostile.Run(hostile.HotKeyStorm, hostile.Config{
			Device: ssd.EnterpriseNVMe, Seed: 1, Heap: hk,
		})
		if err != nil {
			t.Fatalf("hot-key storm heap=%v: %v", hk, err)
		}
		bound := fp.BaseP99NS
		if bound < p99Floor {
			bound = p99Floor
		}
		if fp.StormP99NS > 8*bound {
			t.Errorf("heap=%v: storm p99 %dns vs base %dns exceeds 8x bound — hot-key chain leaked into unrelated lookups",
				hk, fp.StormP99NS, fp.BaseP99NS)
		}
		if fp.HotUpdates == 0 {
			t.Errorf("heap=%v: storm ran no hot-key updates", hk)
		}
	}

	// Gate 2: tenant-skew on the stock cloud device must engage the
	// soft-watermark admission gate and recover from it.
	fp, err := hostile.Run(hostile.TenantSkew, hostile.Config{Device: ssd.CloudBlock, Seed: 1})
	if err != nil {
		t.Fatalf("tenant-skew on cloud-block: %v", err)
	}
	if fp.Queued == 0 {
		t.Error("cloud-block tenant-skew: admission gate never queued a session")
	}
	if fp.ResumedCommits == 0 {
		t.Error("cloud-block tenant-skew: no commit resumed after load shedding")
	}
	if fp.CloudOps == 0 {
		t.Error("cloud-block tenant-skew: device metered no ops")
	}

	// Gate 3: the same scenario with the token bucket tightened below the
	// run's demand must stall at the device level. Latency cannot change
	// the single-threaded control flow, so the admission-side counters
	// must match the stock-device run exactly.
	tight := ssd.CloudBlock
	tight.BaseIOPS = 200
	tight.BurstOps = 16
	tfp, err := hostile.Run(hostile.TenantSkew, hostile.Config{Device: tight, Seed: 1})
	if err != nil {
		t.Fatalf("tenant-skew on tightened cloud: %v", err)
	}
	if tfp.CloudStalls == 0 {
		t.Error("tightened cloud tenant-skew: token bucket never stalled")
	}
	if tfp.Queued != fp.Queued || tfp.Rejected != fp.Rejected || tfp.Committed != fp.Committed {
		t.Errorf("device latency leaked into control flow: stock queued/shed/committed %d/%d/%d, tightened %d/%d/%d",
			fp.Queued, fp.Rejected, fp.Committed, tfp.Queued, tfp.Rejected, tfp.Committed)
	}
}

// The matrix experiment itself must cover the full zoo cross-product and
// render one row per cell.
func TestScenarioMatrixExperiment(t *testing.T) {
	res := runQ(t, "scenarios")
	// 4 devices x (3 table scenarios x 2 heaps + tenant-skew once).
	want := len(ssd.Zoo()) * (3*2 + 1)
	if len(res.Rows) != want {
		t.Fatalf("matrix has %d rows, want %d", len(res.Rows), want)
	}
	for _, row := range res.Rows {
		if row[len(row)-1] == "0000000000000000" {
			t.Errorf("cell %v has a zero state hash", row[:3])
		}
	}
}
