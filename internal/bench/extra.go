package bench

import (
	"fmt"

	"mvpbt/internal/db"
	"mvpbt/internal/workload/ycsb"
)

func init() {
	register(Experiment{
		ID:    "extra-wa",
		Title: "Write amplification under YCSB A: device bytes written / logical bytes (paper contribution: MV-PBT has much lower write amplification than LSM-Trees)",
		Run:   runExtraWA,
	})
	register(Experiment{
		ID:    "extra-merge",
		Title: "Ablation: on-line partition merging — point-lookup and scan cost vs partition count (merging off / on)",
		Run:   runExtraMerge,
	})
}

// runExtraWA quantifies the §1 contribution bullet "MV-PBT supports
// append-based write-behavior and exhibits much lower write-amplification
// compared to LSM-Trees": run the same update-heavy workload on all three
// engines and compare device traffic to the logical write volume.
func runExtraWA(s Scale) (*Result, error) {
	records := s.pick(8000, 50000)
	ops := s.pick(8000, 50000)
	const valueLen = 256
	res := &Result{
		ID:     "extra-wa",
		Title:  "Write amplification under YCSB A",
		Header: []string{"engine", "logical MiB", "device MiB", "write amp", "seq%"},
	}
	for _, kind := range []string{"btree", "lsm", "mvpbt"} {
		kv, eng, err := ycsbEngine(s, kind)
		if err != nil {
			return nil, err
		}
		y := ycsb.NewRunner(kv, ycsb.Config{Records: records, ValueLen: valueLen, Seed: 5})
		if err := y.Load(); err != nil {
			return nil, err
		}
		eng.Pool.FlushAll()
		before := eng.Dev.Stats()
		if err := y.Run(ycsb.WorkloadA, ops); err != nil {
			return nil, err
		}
		eng.Pool.FlushAll()
		// Force the MV-PBT main-memory partition out so its write cost is
		// charged like the LSM's memtable flushes.
		if mv, ok := kv.(*db.MVPBTKV); ok {
			if err := mv.Tree().EvictPN(); err != nil {
				return nil, err
			}
		}
		if l, ok := kv.(*db.LSMKV); ok {
			if err := l.Tree().Flush(); err != nil {
				return nil, err
			}
		}
		d := eng.Dev.Stats().Sub(before)
		logical := float64(y.Updates+y.Inserts) * (valueLen + 24) / (1 << 20)
		device := float64(d.BytesWritten) / (1 << 20)
		seq := 100 * float64(d.SeqWrites) / float64(max64(d.Writes, 1))
		wa := device / logical
		res.Add(kind, f2(logical), f2(device), f2(wa), f1(seq))
	}
	res.Note("logical = updated keys x (value + record header); write amp = device/logical")
	res.Note("the B-Tree pays in-place page writes, the LSM pays compaction rewrites, MV-PBT writes each record once per eviction (plus rare merges)")
	return res, nil
}

// runExtraMerge isolates the partition-merging design choice: identical
// update-heavy histories with merging off and on, then measured point
// lookups and scans.
func runExtraMerge(s Scale) (*Result, error) {
	records := s.pick(4000, 20000)
	churn := s.pick(20000, 80000)
	res := &Result{
		ID:     "extra-merge",
		Title:  "Partition merging ablation",
		Header: []string{"merging", "partitions", "lookup us/op", "scan us/op"},
	}
	for _, merging := range []bool{false, true} {
		eng := db.NewEngine(engineConfig(s.pick(256, 1024), 64<<10))
		maxParts := 0
		if merging {
			maxParts = 8
		}
		kv, err := db.NewMVPBTKV(eng, "m", db.MVPBTKVOptions{BloomBits: 10, MaxPartitions: maxParts})
		if err != nil {
			return nil, err
		}
		y := ycsb.NewRunner(kv, ycsb.Config{Records: records, ValueLen: 128, Seed: 9})
		if err := y.Load(); err != nil {
			return nil, err
		}
		if err := y.Run(ycsb.WorkloadA, churn); err != nil {
			return nil, err
		}
		parts := kv.Tree().NumPartitions()

		lookups := s.pick(2000, 10000)
		el, err := measure(eng.Clock, func() error {
			for i := 0; i < lookups; i++ {
				if _, _, err := kv.Get(ycsb.Key(uint64(i % records))); err != nil {
					return err
				}
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
		lookupUS := el.Seconds() * 1e6 / float64(lookups)

		scans := s.pick(200, 1000)
		el, err = measure(eng.Clock, func() error {
			for i := 0; i < scans; i++ {
				err := kv.Scan(ycsb.Key(uint64((i*37)%records)), 50, func(k, v []byte) bool { return true })
				if err != nil {
					return err
				}
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
		scanUS := el.Seconds() * 1e6 / float64(scans)
		res.Add(fmt.Sprintf("%v", merging), fi(int64(parts)), f2(lookupUS), f2(scanUS))
	}
	res.Note("merging bounds the partitions a scan must merge and garbage-collects across partition boundaries")
	return res, nil
}
