package bench

import (
	"fmt"

	"mvpbt/internal/db"
	"mvpbt/internal/txn"
	"mvpbt/internal/util"
)

func init() {
	register(Experiment{
		ID:    "fig3",
		Title: "Throughput vs version-chain length (YCSB-style mix + point query on a growing chain; B-Tree vs PBT vs MV-PBT)",
		Run:   runFig3,
	})
}

// fig3Engine is one storage configuration under test.
type fig3Engine struct {
	name    string
	eng     *db.Engine
	tbl     *db.Table
	ix      *db.Index
	r       *util.Rand
	hot     []byte
	long    *txn.Tx // the long-running reader pinning the chain
	chain   int     // current hot-tuple chain length
	records int
}

// kvRow encodes [keyLen][key][payload] rows; kvKeyExtract is its index key.
func kvRow(key string, payload []byte) []byte {
	row := make([]byte, 0, 1+len(key)+len(payload))
	row = append(row, byte(len(key)))
	row = append(row, key...)
	return append(row, payload...)
}

func kvKeyExtract(row []byte) []byte { return row[1 : 1+int(row[0])] }

func fig3Key(i int) string { return fmt.Sprintf("user%08d", i) }

// runFig3 reproduces the §2 motivation experiment (Figure 3): a mixed
// update/scan workload with a point query on one tuple whose version
// chain grows to 50 versions while a long-running transaction keeps every
// version alive. The version-oblivious B-Tree collapses with chain
// length; PBT does better thanks to append writes; MV-PBT stays flat
// thanks to the index-only visibility check.
func runFig3(s Scale) (*Result, error) {
	records := s.pick(6000, 20000)
	batch := s.pick(150, 400)
	buffer := s.pick(96, 192)
	lengths := []int{1, 2, 4, 6, 8, 10, 15, 20, 30, 40, 50}
	if s == Full {
		lengths = nil
		for l := 1; l <= 50; l += 2 {
			lengths = append(lengths, l)
		}
	}
	payload := make([]byte, 120)

	build := func(name string, hk db.HeapKind, ik db.IndexKind) (*fig3Engine, error) {
		eng := db.NewEngine(engineConfig(buffer, 2<<20))
		tbl, err := eng.NewTable("r", hk, db.IndexDef{
			Name: "pk", Kind: ik, RefMode: db.RefPhysical, Unique: true,
			BloomBits: 10, Extract: kvKeyExtract,
		})
		if err != nil {
			return nil, err
		}
		fe := &fig3Engine{name: name, eng: eng, tbl: tbl, ix: tbl.Indexes()[0],
			r: util.NewRand(1234), hot: []byte(fig3Key(0)), records: records}
		for i := 0; i < records; i += 500 {
			tx := eng.Begin()
			for j := i; j < i+500 && j < records; j++ {
				fe.r.Letters(payload)
				if _, _, err := tbl.Insert(tx, kvRow(fig3Key(j), payload)); err != nil {
					return nil, err
				}
			}
			eng.Commit(tx)
		}
		eng.Pool.FlushAll()
		fe.chain = 1          // the initial insert is version 1
		fe.long = eng.Begin() // pins every version from here on
		return fe, nil
	}

	engines := []*fig3Engine{}
	for _, spec := range []struct {
		name string
		hk   db.HeapKind
		ik   db.IndexKind
	}{
		{"BTree", db.HeapHOT, db.IdxBTree},
		{"PBT", db.HeapSIAS, db.IdxPBT},
		{"MVPBT", db.HeapSIAS, db.IdxMVPBT},
	} {
		fe, err := build(spec.name, spec.hk, spec.ik)
		if err != nil {
			return nil, err
		}
		engines = append(engines, fe)
	}

	res := &Result{
		ID:     "fig3",
		Title:  "Throughput (tx/s) vs version-chain length",
		Header: []string{"chain", "BTree", "PBT", "MVPBT"},
	}
	chain := 1 // the initial insert is version 1
	for _, target := range lengths {
		row := []string{fi(int64(target))}
		for _, fe := range engines {
			// Grow the hot tuple's chain to the target length. The growth
			// interleaves with unrelated updates (as in the combined
			// workload), so successive versions land on different pages.
			for chainOf(fe) < target {
				if err := fig3Update(fe, fe.hot); err != nil {
					return nil, err
				}
				fe.chain++
				for j := 0; j < 10; j++ {
					k := []byte(fig3Key(1 + fe.r.Intn(fe.records-1)))
					if err := fig3Update(fe, k); err != nil {
						return nil, err
					}
				}
			}
			tput, err := fig3Batch(fe, batch, payload)
			if err != nil {
				return nil, err
			}
			row = append(row, f1(tput))
		}
		res.Rows = append(res.Rows, row)
		chain = target
	}
	_ = chain
	for _, fe := range engines {
		fe.eng.Commit(fe.long)
	}
	res.Note("long-running reader keeps all versions alive; chain = versions of the hot tuple")
	return res, nil
}

// chain tracking lives on the engine struct.
func chainOf(fe *fig3Engine) int { return fe.chain }

// fig3Update creates one successor version of key.
func fig3Update(fe *fig3Engine, key []byte) error {
	tx := fe.eng.Begin()
	cur, err := fe.tbl.LookupOne(tx, fe.ix, key, true)
	if err != nil || cur == nil {
		fe.eng.Abort(tx)
		if err == nil {
			err = fmt.Errorf("fig3: hot tuple lost")
		}
		return err
	}
	buf := make([]byte, 120)
	fe.r.Letters(buf)
	if _, err := fe.tbl.Update(tx, *cur, kvRow(string(key), buf)); err != nil {
		fe.eng.Abort(tx)
		return err
	}
	fe.eng.Commit(tx)
	return nil
}

// fig3Batch runs the measured mix: updates on random tuples, point
// queries on random tuples and on the hot tuple, and short scans covering
// the hot tuple. Returns tx/s in composite time.
func fig3Batch(fe *fig3Engine, n int, payload []byte) (float64, error) {
	el, err := measure(fe.eng.Clock, func() error {
		for i := 0; i < n; i++ {
			if i%10 == 0 {
				// The paper cleans the OS page cache every second; the
				// equivalent here is periodically evicting the pool, so
				// visibility-check reads pay cold random I/O.
				fe.eng.Pool.EvictAll()
			}
			switch i % 10 {
			case 0, 1: // point query on the HOT tuple (the Figure 1 query)
				tx := fe.eng.Begin()
				if _, err := fe.tbl.LookupOne(tx, fe.ix, fe.hot, false); err != nil {
					fe.eng.Abort(tx)
					return err
				}
				fe.eng.Commit(tx)
			case 2, 3, 4: // short scan over the hot tuple's key range (YCSB E)
				tx := fe.eng.Begin()
				cnt := 0
				hi := []byte(fig3Key(10))
				err := fe.tbl.Scan(tx, fe.ix, fe.hot, hi, false, func(db.RowRef) bool {
					cnt++
					return true
				})
				fe.eng.Commit(tx)
				if err != nil {
					return err
				}
			case 5: // point query on a random tuple
				k := []byte(fig3Key(fe.r.Intn(fe.records)))
				tx := fe.eng.Begin()
				if _, err := fe.tbl.LookupOne(tx, fe.ix, k, false); err != nil {
					fe.eng.Abort(tx)
					return err
				}
				fe.eng.Commit(tx)
			default: // update a random tuple (but never the hot one)
				k := []byte(fig3Key(1 + fe.r.Intn(fe.records-1)))
				if err := fig3Update(fe, k); err != nil {
					return err
				}
			}
		}
		return nil
	})
	if err != nil {
		return 0, err
	}
	return perSecond(n, el), nil
}
