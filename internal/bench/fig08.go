package bench

import (
	"fmt"

	"mvpbt/internal/simclock"
	"mvpbt/internal/ssd"
	"mvpbt/internal/storage"
)

func init() {
	register(Experiment{
		ID:    "fig8",
		Title: "I/O characteristics of the simulated Intel DC P3600 SSD (IOPS and MB/s; seq/rand x read/write x 8K/64K)",
		Run:   runFig8,
	})
}

// runFig8 measures the device model itself, regenerating the paper's
// Figure 8 table. This validates that the simulator exposes the
// read/write asymmetry every other experiment depends on.
func runFig8(s Scale) (*Result, error) {
	n := s.pick(2000, 20000)
	res := &Result{
		ID:     "fig8",
		Title:  "Device I/O characteristics",
		Header: []string{"pattern", "op", "block", "IOPS", "MB/s"},
	}
	type cls struct {
		pattern string
		op      string
		block   int
	}
	classes := []cls{
		{"sequential", "read", 8 << 10}, {"sequential", "read", 64 << 10},
		{"random", "read", 8 << 10}, {"random", "read", 64 << 10},
		{"sequential", "write", 8 << 10}, {"sequential", "write", 64 << 10},
		{"random", "write", 8 << 10}, {"random", "write", 64 << 10},
	}
	for _, c := range classes {
		clock := simclock.New()
		dev := ssd.New(clock, ssd.IntelP3600)
		buf := make([]byte, c.block)
		// Pre-write the region so random reads hit written blocks.
		area := int64(n+1) * int64(c.block)
		if c.op == "read" {
			for off := int64(0); off < area; off += storage.PageSize {
				dev.WriteAt(make([]byte, storage.PageSize), off)
			}
		}
		clock.Reset()
		dev.ResetStats()
		r := newLCG(42)
		off := int64(0)
		for i := 0; i < n; i++ {
			if c.pattern == "random" {
				// Random aligned offsets: never adjacent to the previous.
				off = (int64(r.next()%uint64(n)) * int64(c.block) * 2) % area
			}
			if c.op == "read" {
				dev.ReadAt(buf, off)
			} else {
				dev.WriteAt(buf, off)
			}
			if c.pattern == "sequential" {
				off += int64(c.block)
			}
		}
		el := clock.Now()
		iops := perSecond(n, el)
		mbps := float64(n) * float64(c.block) / (1 << 20) / el.Seconds()
		res.Add(c.pattern, c.op, fmt.Sprintf("%dK", c.block>>10), f1(iops), f1(mbps))
	}
	res.Note("latencies derive from the paper's measured IOPS; the table validates the model round-trips them")
	return res, nil
}

// lcg is a tiny deterministic generator local to experiments that must not
// share state with workload RNGs.
type lcg struct{ s uint64 }

func newLCG(seed uint64) *lcg { return &lcg{s: seed} }

func (l *lcg) next() uint64 {
	l.s = l.s*6364136223846793005 + 1442695040888963407
	return l.s >> 11
}
