package server_test

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"net"
	"strings"
	"testing"
	"time"

	"mvpbt/internal/db"
	"mvpbt/internal/server"
	"mvpbt/internal/server/chaos"
	"mvpbt/internal/server/shardclient"
	"mvpbt/internal/server/wire"
	"mvpbt/internal/shard"
)

// startServerWith is startServer with full control over the shard config.
func startServerWith(t *testing.T, scfg shard.Config, cfg server.Config) (*shard.Router, *server.Server, string) {
	t.Helper()
	r, err := shard.New(scfg)
	if err != nil {
		t.Fatal(err)
	}
	srv := server.New(r, cfg)
	addr, err := srv.Listen()
	if err != nil {
		r.Close()
		t.Fatal(err)
	}
	serveDone := make(chan error, 1)
	go func() { serveDone <- srv.Serve() }()
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		srv.Drain(ctx)
		if err := <-serveDone; err != nil {
			t.Errorf("Serve: %v", err)
		}
		r.Close()
	})
	return r, srv, addr.String()
}

func defaultShardConfig(n int) shard.Config {
	return shard.Config{
		Shards: n,
		Engine: db.Config{
			BufferPages:          256,
			PartitionBufferBytes: 64 << 10,
			EnableWAL:            true,
			GroupCommit:          db.GroupCommitConfig{Enabled: true},
		},
	}
}

func poll(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// TestOrphanedTxAbortOnDisconnect: a connection that dies mid-transaction
// must not leak anything — the server aborts the orphaned transaction (no
// pinned GC horizon: every shard's active-transaction count returns to
// zero), releases the session slot (a new session fits under a cap of 1),
// and the orphan's writes are invisible.
func TestOrphanedTxAbortOnDisconnect(t *testing.T) {
	r, srv, addr := startServerWith(t, defaultShardConfig(2), server.Config{
		MaxSessionsPerTenant: 1,
	})
	c, err := shardclient.Dial(addr, "t1")
	if err != nil {
		t.Fatal(err)
	}
	tx, err := c.Begin()
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Set(tx, []byte("orphan-key"), []byte("never-committed")); err != nil {
		t.Fatal(err)
	}
	active := 0
	for i := 0; i < r.NumShards(); i++ {
		active += r.Shard(i).Engine.Mgr.ActiveCount()
	}
	if active == 0 {
		t.Fatal("open server tx holds no engine transactions")
	}

	// Sever the connection with the transaction open.
	c.Close()

	poll(t, "session reaped", func() bool { return srv.SessionCount() == 0 })
	poll(t, "orphan aborted on every shard", func() bool {
		for i := 0; i < r.NumShards(); i++ {
			if r.Shard(i).Engine.Mgr.ActiveCount() != 0 {
				return false
			}
		}
		return true
	})

	// Slot released: a new session fits under MaxSessionsPerTenant=1, and
	// the orphan's write never became visible.
	c2, err := shardclient.Dial(addr, "t1")
	if err != nil {
		t.Fatalf("re-dial under cap 1: %v", err)
	}
	defer c2.Close()
	if _, ok, _ := c2.Get(0, []byte("orphan-key")); ok {
		t.Fatal("orphaned transaction's write is visible")
	}
	// GC horizon is unpinned: autocommit traffic proceeds and the old
	// transaction ids fall behind the horizon.
	for i := 0; i < 20; i++ {
		if err := c2.Set(0, []byte(fmt.Sprintf("h-%d", i)), []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < r.NumShards(); i++ {
		if r.Shard(i).Engine.Mgr.ActiveCount() != 0 {
			t.Fatalf("shard %d still pins transactions", i)
		}
	}
}

// TestVersionNegotiation: a HELLO carrying the wrong protocol version is
// refused with StatusVersionMismatch naming both versions; a version-less
// legacy HELLO is refused the same way (version 0).
func TestVersionNegotiation(t *testing.T) {
	_, _, addr := startServerWith(t, defaultShardConfig(1), server.Config{})

	hello := func(t *testing.T, segs ...[]byte) (byte, []byte) {
		t.Helper()
		conn, err := net.DialTimeout("tcp", addr, 5*time.Second)
		if err != nil {
			t.Fatal(err)
		}
		defer conn.Close()
		conn.SetDeadline(time.Now().Add(5 * time.Second))
		bw := bufio.NewWriter(conn)
		if err := wire.WriteFrame(bw, wire.OpHello, segs...); err != nil {
			t.Fatal(err)
		}
		if err := bw.Flush(); err != nil {
			t.Fatal(err)
		}
		st, payload, err := wire.ReadFrame(bufio.NewReader(conn))
		if err != nil {
			t.Fatal(err)
		}
		return st, payload
	}

	st, payload := hello(t, wire.U32(99), []byte("t1"))
	if st != wire.StatusVersionMismatch {
		t.Fatalf("status = %d, want StatusVersionMismatch", st)
	}
	srvVer, text, err := wire.TakeU32(payload)
	if err != nil || srvVer != wire.ProtoVersion {
		t.Fatalf("server version in payload = %d, %v", srvVer, err)
	}
	if !strings.Contains(string(text), "99") || !strings.Contains(string(text), fmt.Sprint(wire.ProtoVersion)) {
		t.Fatalf("mismatch text %q does not name both versions", text)
	}

	if st, _ := hello(t, []byte("t")); st != wire.StatusVersionMismatch {
		t.Fatalf("legacy version-less HELLO: status = %d, want StatusVersionMismatch", st)
	}

	// The current client negotiates fine.
	c, err := shardclient.Dial(addr, "t1")
	if err != nil {
		t.Fatal(err)
	}
	c.Close()
}

// TestIdleSessionReaped: a session that goes quiet past IdleTimeout is
// reaped — its slot freed and its connection dead.
func TestIdleSessionReaped(t *testing.T) {
	_, srv, addr := startServerWith(t, defaultShardConfig(1), server.Config{
		IdleTimeout: 50 * time.Millisecond,
	})
	c, err := shardclient.Dial(addr, "t1")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Set(0, []byte("k"), []byte("v")); err != nil {
		t.Fatal(err)
	}
	poll(t, "idle session reaped", func() bool { return srv.SessionCount() == 0 })
	if err := c.Set(0, []byte("k2"), []byte("v")); err == nil {
		t.Fatal("write on a reaped session succeeded")
	}
}

// tokenDedupServer builds a 1-shard server behind a chaos schedule and
// returns the address. One shard keeps the frame sequence trivially
// predictable: In 0=HELLO 1=BEGIN 2=SET 3=COMMIT, Out mirrors it.
func tokenDedupServer(t *testing.T, rules []chaos.Rule) (string, *chaos.Schedule) {
	t.Helper()
	sched := chaos.NewSchedule(rules)
	_, _, addr := startServerWith(t, defaultShardConfig(1), server.Config{
		WrapListener: func(ln net.Listener) net.Listener { return chaos.Wrap(ln, sched) },
	})
	return addr, sched
}

// TestCommitTokenAckLost: the connection dies AFTER the server applies
// COMMIT but before the client reads the ack (Out frame 3 cut). The retry
// path must observe exactly-once semantics: ResolveCommit reports
// committed, re-Begin with the same token is refused, and the write exists
// exactly as committed.
func TestCommitTokenAckLost(t *testing.T) {
	addr, _ := tokenDedupServer(t, []chaos.Rule{{Dir: chaos.Out, Frame: 3, Action: chaos.Cut}})

	const token = 0xDEADBEEF
	c, err := shardclient.Dial(addr, "t1")
	if err != nil {
		t.Fatal(err)
	}
	tx, err := c.BeginToken(token)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Set(tx, []byte("al-k"), []byte("al-v")); err != nil {
		t.Fatal(err)
	}
	if err := c.Commit(tx); err == nil {
		t.Fatal("COMMIT ack survived the scheduled cut")
	}
	c.Close()

	// Reconnect and resolve: the commit applied; the ack was lost.
	c2, err := shardclient.Dial(addr, "t1")
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	applied, err := c2.ResolveCommit(token)
	if err != nil || !applied {
		t.Fatalf("ResolveCommit = %v, %v; want true", applied, err)
	}
	// A blind retry of the whole transaction is refused at Begin.
	if _, err := c2.BeginToken(token); !errors.Is(err, shardclient.ErrAlreadyCommitted) {
		t.Fatalf("BeginToken(reused) err = %v, want ErrAlreadyCommitted", err)
	}
	v, ok, err := c2.Get(0, []byte("al-k"))
	if err != nil || !ok || string(v) != "al-v" {
		t.Fatalf("committed write: %q %v %v", v, ok, err)
	}
}

// TestCommitTokenRequestLost: the connection dies BEFORE the COMMIT
// request reaches the server (In frame 3 cut) — the orphaned transaction
// is aborted with the session, ResolveCommit reports not-committed, and
// re-running the transaction with a fresh token applies it exactly once.
func TestCommitTokenRequestLost(t *testing.T) {
	addr, _ := tokenDedupServer(t, []chaos.Rule{{Dir: chaos.In, Frame: 3, Action: chaos.Cut}})

	const token = 0xFEEDF00D
	c, err := shardclient.Dial(addr, "t1")
	if err != nil {
		t.Fatal(err)
	}
	tx, err := c.BeginToken(token)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Set(tx, []byte("rl-k"), []byte("rl-v")); err != nil {
		t.Fatal(err)
	}
	if err := c.Commit(tx); err == nil {
		t.Fatal("COMMIT request survived the scheduled cut")
	}
	c.Close()

	c2, err := shardclient.Dial(addr, "t1")
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	applied, err := c2.ResolveCommit(token)
	if err != nil || applied {
		t.Fatalf("ResolveCommit = %v, %v; want false", applied, err)
	}
	if _, ok, _ := c2.Get(0, []byte("rl-k")); ok {
		t.Fatal("aborted transaction's write is visible")
	}
	// The resolution is authoritative: safe to re-run with the same token.
	tx2, err := c2.BeginToken(token)
	if err != nil {
		t.Fatal(err)
	}
	if err := c2.Set(tx2, []byte("rl-k"), []byte("rl-v")); err != nil {
		t.Fatal(err)
	}
	if err := c2.Commit(tx2); err != nil {
		t.Fatal(err)
	}
	v, ok, err := c2.Get(0, []byte("rl-k"))
	if err != nil || !ok || string(v) != "rl-v" {
		t.Fatalf("re-run write: %q %v %v", v, ok, err)
	}
}

// TestRTxExactlyOnceCounter drives a read-modify-write through RTx under an
// ack-lost cut: the increment must land exactly once even though the commit
// was retried/resolved across a reconnect.
func TestRTxExactlyOnceCounter(t *testing.T) {
	// Out frame 5 is the COMMIT ack: HELLO=0, SET(seed)=1, BEGIN=2, GET=3,
	// SET=4, COMMIT=5.
	addr, _ := tokenDedupServer(t, []chaos.Rule{{Dir: chaos.Out, Frame: 5, Action: chaos.Cut}})
	rc := shardclient.NewRClient(shardclient.RConfig{
		Addr: addr, Tenant: "t1", Seed: 7, RetryWrites: true,
		BaseBackoff: time.Millisecond, MaxBackoff: 4 * time.Millisecond,
	})
	defer rc.Close()

	if err := rc.Set([]byte("ctr"), []byte("10")); err != nil {
		t.Fatal(err)
	}
	tx, err := rc.BeginTx()
	if err != nil {
		t.Fatal(err)
	}
	v, ok, err := tx.Get([]byte("ctr"))
	if err != nil || !ok {
		t.Fatalf("tx get: %q %v %v", v, ok, err)
	}
	var n int
	fmt.Sscanf(string(v), "%d", &n)
	if err := tx.Set([]byte("ctr"), []byte(fmt.Sprint(n+1))); err != nil {
		t.Fatal(err)
	}
	outcome, err := tx.Commit()
	if err != nil {
		t.Fatalf("commit: %v", err)
	}
	if outcome != shardclient.CommitResolvedApplied {
		t.Fatalf("outcome = %v, want CommitResolvedApplied (ack was cut)", outcome)
	}
	got, _, err := rc.Get([]byte("ctr"))
	if err != nil || string(got) != "11" {
		t.Fatalf("counter = %q (%v), want 11 — increment applied other than exactly once", got, err)
	}
}

// TestCommitTokenTTLExpiry: past CommitTokenTTL the dedup table forgets a
// token, so resolution honestly reports not-committed (the documented
// staleness bound) rather than pretending to remember.
func TestCommitTokenTTLExpiry(t *testing.T) {
	_, _, addr := startServerWith(t, defaultShardConfig(1), server.Config{
		CommitTokenTTL: 30 * time.Millisecond,
	})
	c, err := shardclient.Dial(addr, "t1")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	const token = 0xABCD
	tx, err := c.BeginToken(token)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Set(tx, []byte("ttl-k"), []byte("v")); err != nil {
		t.Fatal(err)
	}
	if err := c.Commit(tx); err != nil {
		t.Fatal(err)
	}
	if applied, err := c.ResolveCommit(token); err != nil || !applied {
		t.Fatalf("fresh token: ResolveCommit = %v, %v", applied, err)
	}
	time.Sleep(60 * time.Millisecond)
	if applied, err := c.ResolveCommit(token); err != nil || applied {
		t.Fatalf("expired token: ResolveCommit = %v, %v; want false", applied, err)
	}
}

// TestUnavailableStatusTyped: an operation routed to a failed shard comes
// back as StatusUnavailable and surfaces client-side as UnavailableError
// naming the shard, while the other shard keeps serving; once the
// supervisor restarts the shard, the same operation succeeds.
func TestUnavailableStatusTyped(t *testing.T) {
	block := make(chan struct{})
	released := false
	release := func() {
		if !released {
			released = true
			close(block)
		}
	}
	defer release()

	scfg := defaultShardConfig(2)
	scfg.Supervise = true
	scfg.Supervisor = shard.SupervisorConfig{
		RestartBackoff: time.Millisecond,
		MaxBackoff:     10 * time.Millisecond,
		RestartHook:    func(int) error { <-block; return nil },
	}
	r, _, addr := startServerWith(t, scfg, server.Config{})
	c, err := shardclient.Dial(addr, "t1")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	// Find one key per shard.
	keys := map[int][]byte{}
	for i := 0; len(keys) < 2 && i < 10000; i++ {
		k := []byte(fmt.Sprintf("ua-%04d", i))
		if _, ok := keys[r.ShardOf(k)]; !ok {
			keys[r.ShardOf(k)] = k
		}
	}
	for _, k := range keys {
		if err := c.Set(0, k, []byte("v")); err != nil {
			t.Fatal(err)
		}
	}

	if err := r.FailShard(0, errors.New("test failure")); err != nil {
		t.Fatal(err)
	}
	var ue *shardclient.UnavailableError
	err = c.Set(0, keys[0], []byte("during"))
	if !errors.As(err, &ue) || ue.Shard != 0 {
		t.Fatalf("failed-shard Set err = %v, want UnavailableError{Shard: 0}", err)
	}
	if err := c.Set(0, keys[1], []byte("still-up")); err != nil {
		t.Fatalf("healthy shard during failure: %v", err)
	}

	release()
	poll(t, "shard 0 recovered", func() bool { return r.Health(0).State == shard.Healthy })
	if err := c.Set(0, keys[0], []byte("after")); err != nil {
		t.Fatalf("post-recovery Set: %v", err)
	}
	v, ok, err := c.Get(0, keys[0])
	if err != nil || !ok || string(v) != "after" {
		t.Fatalf("post-recovery Get: %q %v %v", v, ok, err)
	}
}
