// resilient.go: RClient, the self-healing layer over Client — automatic
// reconnect with capped exponential backoff and seeded jitter, retry of
// idempotent operations, and exactly-once commits across connection loss
// via idempotent commit tokens (DESIGN.md §14).
//
// Error taxonomy. Every failure an operation can see falls in one of three
// classes, and the class decides the reaction:
//
//   - transport errors (connection reset, timeout, injected chaos cut):
//     the session is gone — drop the connection, reconnect, and (for
//     idempotent operations) retry on the fresh session;
//   - retriable server statuses (StatusUnavailable — the owning shard is
//     restarting; StatusAdmission — overload): keep or re-establish the
//     connection per status, back off, retry;
//   - everything else (ReadOnlyError, ErrNoTx, validation errors): the
//     server answered; retrying would return the same answer. Fail fast.
//
// GET, SCAN and STATS are naturally idempotent and always retried. SET and
// DEL are state-idempotent blind upserts (applying one twice yields the
// same state), but a retry can double-apply next to a concurrent writer of
// the same key; RConfig.RetryWrites opts in (correct whenever the client
// owns its keys, as the chaos campaign's clients do). Transactions are the
// hard case: the commit decision must survive the connection dying at any
// point, including between the server applying COMMIT and the client
// reading the ack. RTx solves it with a client-generated commit token the
// server records atomically with the commit — after any mid-commit
// transport error, ResolveCommit(token) asks the server which side of the
// decision the transaction landed on.
package shardclient

import (
	"errors"
	"fmt"
	"time"

	"mvpbt/internal/util"
)

// RConfig tunes an RClient.
type RConfig struct {
	Addr   string
	Tenant string
	// Seed drives backoff jitter and commit-token generation. Two RClients
	// with the same seed and the same logical history make identical
	// decisions — the chaos campaign's determinism hinges on it.
	Seed uint64
	// MaxAttempts bounds tries per operation, reconnects included
	// (default 8).
	MaxAttempts int
	// BaseBackoff is the first retry's sleep (default 2ms); doubled per
	// attempt up to MaxBackoff (default 100ms), plus up to 50% jitter.
	BaseBackoff time.Duration
	MaxBackoff  time.Duration
	// DialTimeout bounds each connect + handshake (default 5s).
	DialTimeout time.Duration
	// RetryWrites retries Set/Del after transport errors. Safe when the
	// client owns its keys (blind upserts are state-idempotent); off by
	// default because a retried Set can re-apply over a concurrent
	// writer's value.
	RetryWrites bool
}

func (c RConfig) withDefaults() RConfig {
	if c.MaxAttempts <= 0 {
		c.MaxAttempts = 8
	}
	if c.BaseBackoff <= 0 {
		c.BaseBackoff = 2 * time.Millisecond
	}
	if c.MaxBackoff <= 0 {
		c.MaxBackoff = 100 * time.Millisecond
	}
	if c.DialTimeout <= 0 {
		c.DialTimeout = 5 * time.Second
	}
	return c
}

// RStats counts the client's self-healing activity.
type RStats struct {
	Dials      uint64 // successful dials (first + reconnects)
	Reconnects uint64 // dials after a lost session
	RetriedOps uint64 // operations re-sent after a failure
	// Commit-token resolutions after mid-commit transport errors:
	Resolves          uint64
	ResolvedCommitted uint64 // resolution: the commit had applied
	ResolvedLost      uint64 // resolution: the commit had not applied
}

// ErrTxLost reports a transaction whose connection died before COMMIT was
// issued: the server aborts the orphaned transaction when it reaps the
// session, so the transaction deterministically did not apply. The caller
// may simply re-run it (with a fresh token).
var ErrTxLost = errors.New("shardclient: transaction lost before commit (not applied)")

// RClient is a self-healing client: one logical session that transparently
// spans physical connections. Not safe for concurrent use (like Client).
type RClient struct {
	cfg   RConfig
	rng   *util.Rand
	c     *Client // nil when disconnected
	stats RStats
}

// NewRClient returns a disconnected RClient; the first operation dials.
func NewRClient(cfg RConfig) *RClient {
	cfg = cfg.withDefaults()
	return &RClient{cfg: cfg, rng: util.NewRand(cfg.Seed | 1)}
}

// Stats snapshots the self-healing counters.
func (r *RClient) Stats() RStats { return r.stats }

// Close drops the current connection, if any.
func (r *RClient) Close() error {
	if r.c != nil {
		err := r.c.Close()
		r.c = nil
		return err
	}
	return nil
}

// transport reports whether err is a connection-level failure (as opposed
// to a server status, which arrived on a healthy connection).
func transport(err error) bool {
	if err == nil {
		return false
	}
	if errors.Is(err, ErrAdmission) || errors.Is(err, ErrDraining) ||
		errors.Is(err, ErrNoTx) || errors.Is(err, ErrNotCommitted) ||
		errors.Is(err, ErrAlreadyCommitted) {
		return false
	}
	var ro *ReadOnlyError
	var un *UnavailableError
	var vm *VersionMismatchError
	var se *ServerError
	var ind *InDoubtError
	if errors.As(err, &ro) || errors.As(err, &un) || errors.As(err, &vm) ||
		errors.As(err, &se) || errors.As(err, &ind) {
		return false
	}
	return true // net.OpError, io.EOF, deadline, malformed frame, ...
}

// retriable reports whether err is worth another attempt at all.
func retriable(err error) bool {
	if transport(err) {
		return true
	}
	var un *UnavailableError
	return errors.As(err, &un) || errors.Is(err, ErrAdmission)
}

// backoff sleeps for attempt's capped-exponential delay with seeded jitter.
func (r *RClient) backoff(attempt int) {
	d := r.cfg.BaseBackoff << uint(attempt)
	if d > r.cfg.MaxBackoff || d <= 0 {
		d = r.cfg.MaxBackoff
	}
	// Up to 50% seeded jitter, so retry storms from many clients decohere
	// while one seed's delays replay exactly.
	d += time.Duration(r.rng.Uint64() % uint64(d/2+1))
	time.Sleep(d)
}

// ensure returns a live connection, dialing if needed.
func (r *RClient) ensure() (*Client, error) {
	if r.c != nil {
		return r.c, nil
	}
	c, err := DialTimeout(r.cfg.Addr, r.cfg.Tenant, r.cfg.DialTimeout)
	if err != nil {
		return nil, err
	}
	r.stats.Dials++
	if r.stats.Dials > 1 {
		r.stats.Reconnects++
	}
	r.c = c
	return c, nil
}

// drop discards the current connection after a transport error.
func (r *RClient) drop() {
	if r.c != nil {
		r.c.Close()
		r.c = nil
	}
}

// do runs op with reconnect/retry per the error taxonomy. retryOp says the
// operation may be re-sent after a transport error (idempotent or
// state-idempotent ops only).
func (r *RClient) do(retryOp bool, op func(c *Client) error) error {
	var lastErr error
	for attempt := 0; attempt < r.cfg.MaxAttempts; attempt++ {
		if attempt > 0 {
			r.backoff(attempt - 1)
		}
		c, err := r.ensure()
		if err != nil {
			lastErr = err
			if !transport(err) && !errors.Is(err, ErrAdmission) {
				return err // e.g. version mismatch: reconnecting won't help
			}
			continue
		}
		err = op(c)
		if err == nil {
			return nil
		}
		lastErr = err
		if transport(err) {
			r.drop()
			if !retryOp {
				return err
			}
		} else if !retriable(err) {
			return err
		}
		r.stats.RetriedOps++
	}
	return fmt.Errorf("shardclient: gave up after %d attempts: %w", r.cfg.MaxAttempts, lastErr)
}

// Get reads key (idempotent; always retried).
func (r *RClient) Get(key []byte) (val []byte, ok bool, err error) {
	err = r.do(true, func(c *Client) error {
		val, ok, err = c.Get(0, key)
		return err
	})
	return val, ok, err
}

// Scan reads up to limit pairs with key >= lo (idempotent; always retried).
func (r *RClient) Scan(lo []byte, limit int) (out []KV, err error) {
	err = r.do(true, func(c *Client) error {
		out, err = c.Scan(0, lo, limit)
		return err
	})
	return out, err
}

// Stats0 fetches the server's stats text (idempotent; always retried).
func (r *RClient) Stats0() (s string, err error) {
	err = r.do(true, func(c *Client) error {
		s, err = c.Stats()
		return err
	})
	return s, err
}

// Set upserts key (autocommit). Retried across transport errors only when
// RetryWrites is set.
func (r *RClient) Set(key, val []byte) error {
	return r.do(r.cfg.RetryWrites, func(c *Client) error {
		return c.Set(0, key, val)
	})
}

// Del tombstones key (autocommit). Retried like Set.
func (r *RClient) Del(key []byte) error {
	return r.do(r.cfg.RetryWrites, func(c *Client) error {
		return c.Del(0, key)
	})
}

// CommitOutcome is how an RTx ended.
type CommitOutcome int

const (
	// CommitApplied: the commit applied and was acknowledged directly.
	CommitApplied CommitOutcome = iota
	// CommitResolvedApplied: a mid-commit transport error was resolved via
	// the commit token — the commit HAD applied (the ack was lost).
	CommitResolvedApplied
	// CommitNotApplied: the transaction did not apply (lost before commit,
	// or resolution found the token unrecorded).
	CommitNotApplied
)

// RTx is one transaction attempt on an RClient. Unlike reads, a
// transaction cannot transparently span connections: its server-side state
// dies with the session. What survives is the commit DECISION, via the
// token. A transport error before Commit returns ErrTxLost (deterministically
// not applied — the server aborts orphans); a transport error during Commit
// triggers token resolution.
type RTx struct {
	r     *RClient
	id    uint32
	token uint64
	lost  bool
}

// BeginTx opens a transaction with a fresh seeded commit token.
func (r *RClient) BeginTx() (*RTx, error) {
	token := r.rng.Uint64() | 1 // nonzero
	tx := &RTx{r: r, token: token}
	err := r.do(true, func(c *Client) error {
		id, err := c.BeginToken(token)
		if err != nil {
			return err
		}
		tx.id = id
		return nil
	})
	if errors.Is(err, ErrAlreadyCommitted) {
		// Possible only if the caller reuses a seed across committed
		// histories; surface it rather than silently reopening.
		return nil, err
	}
	if err != nil {
		return nil, err
	}
	return tx, nil
}

// Token exposes the transaction's commit token (tests, logging).
func (t *RTx) Token() uint64 { return t.token }

// Set buffers an upsert in the transaction. A transport error marks the
// transaction lost: the server aborts it with the session, so it is
// guaranteed not to apply.
func (t *RTx) Set(key, val []byte) error {
	if t.lost {
		return ErrTxLost
	}
	if t.r.c == nil {
		t.lost = true
		return ErrTxLost
	}
	err := t.r.c.Set(t.id, key, val)
	if transport(err) {
		t.r.drop()
		t.lost = true
		return ErrTxLost
	}
	return err
}

// Get reads key at the transaction's snapshot.
func (t *RTx) Get(key []byte) ([]byte, bool, error) {
	if t.lost {
		return nil, false, ErrTxLost
	}
	if t.r.c == nil {
		t.lost = true
		return nil, false, ErrTxLost
	}
	v, ok, err := t.r.c.Get(t.id, key)
	if transport(err) {
		t.r.drop()
		t.lost = true
		return nil, false, ErrTxLost
	}
	return v, ok, err
}

// Commit drives the transaction to a definite outcome. On a clean ack the
// outcome is CommitApplied. On a transport error the decision is unknown —
// the COMMIT may or may not have reached the server — so Commit reconnects
// and resolves the token: CommitResolvedApplied if the server recorded it
// (ack-lost ordering), CommitNotApplied if not (request-lost ordering; the
// orphaned transaction was aborted). Resolution itself retries across
// reconnects; only if every attempt fails does Commit return an error with
// outcome CommitNotApplied and the truth unknown.
func (t *RTx) Commit() (CommitOutcome, error) {
	if t.lost {
		return CommitNotApplied, ErrTxLost
	}
	if t.r.c == nil {
		t.lost = true
		return CommitNotApplied, ErrTxLost
	}
	err := t.r.c.Commit(t.id)
	if err == nil {
		return CommitApplied, nil
	}
	var ind *InDoubtError
	if errors.As(err, &ind) {
		// The server itself reported the commit in doubt (a 2PC participant
		// failed mid-protocol; the decision is durable and the token is
		// recorded). The connection is healthy — resolve the token on it.
		t.r.stats.Resolves++
		return t.resolveToken()
	}
	if !transport(err) {
		return CommitNotApplied, err
	}
	// In doubt: the connection died somewhere inside COMMIT.
	t.r.drop()
	t.r.stats.Resolves++
	return t.resolveToken()
}

// resolveToken asks the server (reconnecting as needed) whether this
// transaction's commit token was recorded — the shared tail of both
// in-doubt paths (connection death inside COMMIT, and StatusInDoubt from
// a 2PC participant failure).
func (t *RTx) resolveToken() (CommitOutcome, error) {
	var applied bool
	rerr := t.r.do(true, func(c *Client) error {
		a, err := c.ResolveCommit(t.token)
		if err != nil {
			return err
		}
		applied = a
		return nil
	})
	if rerr != nil {
		return CommitNotApplied, fmt.Errorf("shardclient: commit in doubt, resolution failed: %w", rerr)
	}
	if applied {
		t.r.stats.ResolvedCommitted++
		return CommitResolvedApplied, nil
	}
	t.r.stats.ResolvedLost++
	return CommitNotApplied, nil
}

// Abort discards the transaction. Best-effort: if the connection is gone
// the server has already aborted it.
func (t *RTx) Abort() {
	if t.lost || t.r.c == nil {
		return
	}
	if err := t.r.c.Abort(t.id); transport(err) {
		t.r.drop()
	}
}
