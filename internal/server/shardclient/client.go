// Package shardclient is the Go client for mvpbt-server's wire protocol.
// A Client owns one TCP connection and issues requests serially (the
// protocol has no pipelining); use one Client per goroutine.
package shardclient

import (
	"bufio"
	"errors"
	"fmt"
	"net"
	"time"

	"mvpbt/internal/server/wire"
)

// Typed errors for the protocol's status codes.
var (
	// ErrAdmission: the server's admission control refused the session
	// (overload or session caps). Back off and retry.
	ErrAdmission = errors.New("shardclient: session refused by admission control")
	// ErrDraining: the server is shutting down.
	ErrDraining = errors.New("shardclient: server draining")
	// ErrNoTx: the named transaction does not exist (or the session's
	// transaction table is full).
	ErrNoTx = errors.New("shardclient: no such transaction")
	// ErrNotCommitted: a commit-token resolution found the token
	// unrecorded — the commit never applied (or its dedup entry expired
	// past the server's TTL).
	ErrNotCommitted = errors.New("shardclient: commit token not recorded")
	// ErrAlreadyCommitted: a Begin reused a token the server has already
	// recorded as committed.
	ErrAlreadyCommitted = errors.New("shardclient: commit token already applied")
)

// ReadOnlyError reports an operation refused because its owning shard is
// degraded read-only.
type ReadOnlyError struct {
	Shard int
	Msg   string
}

func (e *ReadOnlyError) Error() string {
	return fmt.Sprintf("shardclient: shard %d read-only: %s", e.Shard, e.Msg)
}

// UnavailableError reports an operation refused because its owning shard
// is failed or recovering. Retriable: the server's supervisor is
// restarting the shard, and every other shard keeps serving.
type UnavailableError struct {
	Shard int
	Msg   string
}

func (e *UnavailableError) Error() string {
	return fmt.Sprintf("shardclient: shard %d unavailable (retriable): %s", e.Shard, e.Msg)
}

// VersionMismatchError reports a HELLO refused over protocol versions.
type VersionMismatchError struct {
	Client, Server uint32
	Msg            string
}

func (e *VersionMismatchError) Error() string {
	return fmt.Sprintf("shardclient: protocol version mismatch (client %d, server %d): %s", e.Client, e.Server, e.Msg)
}

// InDoubtError reports a multi-shard commit whose COMMIT decision is
// durable but whose legs are still resolving (StatusInDoubt). The
// transaction WILL commit and the server has already recorded the commit
// token — resolve the token to confirm the outcome (RClient does this
// automatically).
type InDoubtError struct{ Msg string }

func (e *InDoubtError) Error() string {
	return "shardclient: commit in doubt (decision durable, resolution pending): " + e.Msg
}

// ServerError is a generic server-side failure (StatusErr).
type ServerError struct{ Msg string }

func (e *ServerError) Error() string { return "shardclient: server error: " + e.Msg }

// KV is one scan result pair.
type KV struct {
	Key []byte
	Val []byte
}

// Client is one protocol session. Not safe for concurrent use.
type Client struct {
	conn  net.Conn
	br    *bufio.Reader
	bw    *bufio.Writer
	maxTx uint32
}

// Dial connects, performs the HELLO handshake as tenant, and returns an
// admitted session. Admission refusals surface as ErrAdmission or
// ErrDraining.
func Dial(addr, tenant string) (*Client, error) {
	return DialTimeout(addr, tenant, 10*time.Second)
}

// DialTimeout is Dial with a connect + handshake deadline.
func DialTimeout(addr, tenant string, timeout time.Duration) (*Client, error) {
	conn, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return nil, err
	}
	c := &Client{conn: conn, br: bufio.NewReader(conn), bw: bufio.NewWriter(conn)}
	conn.SetDeadline(time.Now().Add(timeout))
	status, payload, err := c.call(wire.OpHello, wire.U32(wire.ProtoVersion), []byte(tenant))
	conn.SetDeadline(time.Time{})
	if err != nil {
		conn.Close()
		return nil, err
	}
	if status != wire.StatusOK {
		conn.Close()
		return nil, statusErr(status, payload)
	}
	if mt, _, err := wire.TakeU32(payload); err == nil {
		c.maxTx = mt
	}
	return c, nil
}

// Close tears the session down. Open transactions are aborted server-side.
func (c *Client) Close() error { return c.conn.Close() }

// MaxOpenTx is the server's per-session open-transaction cap.
func (c *Client) MaxOpenTx() int { return int(c.maxTx) }

// call sends one frame and reads the response.
func (c *Client) call(op byte, segs ...[]byte) (status byte, payload []byte, err error) {
	if err := wire.WriteFrame(c.bw, op, segs...); err != nil {
		return 0, nil, err
	}
	if err := c.bw.Flush(); err != nil {
		return 0, nil, err
	}
	return wire.ReadFrame(c.br)
}

// statusErr maps a non-OK status frame to a typed error.
func statusErr(status byte, payload []byte) error {
	switch status {
	case wire.StatusAdmission:
		return ErrAdmission
	case wire.StatusDraining:
		return ErrDraining
	case wire.StatusNoTx:
		return fmt.Errorf("%w: %s", ErrNoTx, payload)
	case wire.StatusReadOnly:
		shardNo, rest, err := wire.TakeU32(payload)
		if err != nil {
			return &ReadOnlyError{Shard: -1, Msg: string(payload)}
		}
		return &ReadOnlyError{Shard: int(shardNo), Msg: string(rest)}
	case wire.StatusUnavailable:
		shardNo, rest, err := wire.TakeU32(payload)
		if err != nil {
			return &UnavailableError{Shard: -1, Msg: string(payload)}
		}
		return &UnavailableError{Shard: int(shardNo), Msg: string(rest)}
	case wire.StatusVersionMismatch:
		srv, rest, err := wire.TakeU32(payload)
		if err != nil {
			return &VersionMismatchError{Client: wire.ProtoVersion, Msg: string(payload)}
		}
		return &VersionMismatchError{Client: wire.ProtoVersion, Server: srv, Msg: string(rest)}
	case wire.StatusNotCommitted:
		return fmt.Errorf("%w: %s", ErrNotCommitted, payload)
	case wire.StatusAlreadyCommitted:
		return fmt.Errorf("%w: %s", ErrAlreadyCommitted, payload)
	case wire.StatusInDoubt:
		return &InDoubtError{Msg: string(payload)}
	default:
		return &ServerError{Msg: string(payload)}
	}
}

// Get reads key. tx 0 is an autocommit read of the newest committed
// version; tx > 0 reads at that transaction's cross-shard snapshot.
func (c *Client) Get(tx uint32, key []byte) ([]byte, bool, error) {
	status, payload, err := c.call(wire.OpGet, wire.U32(tx), key)
	if err != nil {
		return nil, false, err
	}
	if status != wire.StatusOK {
		return nil, false, statusErr(status, payload)
	}
	if len(payload) < 1 {
		return nil, false, fmt.Errorf("shardclient: short GET response")
	}
	if payload[0] == 0 {
		return nil, false, nil
	}
	return payload[1:], true, nil
}

// Set upserts key=val under tx (0 = autocommit through the owning shard's
// durable path).
func (c *Client) Set(tx uint32, key, val []byte) error {
	status, payload, err := c.call(wire.OpSet, wire.U32(tx), wire.U32(uint32(len(key))), key, val)
	if err != nil {
		return err
	}
	if status != wire.StatusOK {
		return statusErr(status, payload)
	}
	return nil
}

// Del tombstones key under tx (0 = autocommit).
func (c *Client) Del(tx uint32, key []byte) error {
	status, payload, err := c.call(wire.OpDel, wire.U32(tx), key)
	if err != nil {
		return err
	}
	if status != wire.StatusOK {
		return statusErr(status, payload)
	}
	return nil
}

// Scan returns up to limit pairs with key >= lo in global key order, at
// tx's snapshot (tx 0 takes a fresh consistent snapshot for the scan).
func (c *Client) Scan(tx uint32, lo []byte, limit int) ([]KV, error) {
	status, payload, err := c.call(wire.OpScan, wire.U32(tx), wire.U32(uint32(limit)), lo)
	if err != nil {
		return nil, err
	}
	if status != wire.StatusOK {
		return nil, statusErr(status, payload)
	}
	n, rest, err := wire.TakeU32(payload)
	if err != nil {
		return nil, err
	}
	out := make([]KV, 0, n)
	for i := uint32(0); i < n; i++ {
		var klen, vlen uint32
		if klen, rest, err = wire.TakeU32(rest); err != nil || int(klen) > len(rest) {
			return nil, fmt.Errorf("shardclient: malformed SCAN response")
		}
		k := rest[:klen]
		rest = rest[klen:]
		if vlen, rest, err = wire.TakeU32(rest); err != nil || int(vlen) > len(rest) {
			return nil, fmt.Errorf("shardclient: malformed SCAN response")
		}
		v := rest[:vlen]
		rest = rest[vlen:]
		out = append(out, KV{Key: k, Val: v})
	}
	return out, nil
}

// Begin opens a cross-shard transaction and returns its session-local id.
func (c *Client) Begin() (uint32, error) {
	status, payload, err := c.call(wire.OpBegin)
	if err != nil {
		return 0, err
	}
	if status != wire.StatusOK {
		return 0, statusErr(status, payload)
	}
	id, _, err := wire.TakeU32(payload)
	return id, err
}

// BeginToken is Begin with a client-generated idempotent commit token
// (nonzero). If the server has already recorded token as committed — a
// previous attempt's COMMIT applied but its ack was lost — the error is
// ErrAlreadyCommitted, which the caller should treat as success.
func (c *Client) BeginToken(token uint64) (uint32, error) {
	status, payload, err := c.call(wire.OpBegin, wire.U64(token))
	if err != nil {
		return 0, err
	}
	if status != wire.StatusOK {
		return 0, statusErr(status, payload)
	}
	id, _, err := wire.TakeU32(payload)
	return id, err
}

// Commit durably commits tx.
func (c *Client) Commit(tx uint32) error {
	status, payload, err := c.call(wire.OpCommit, wire.U32(tx))
	if err != nil {
		return err
	}
	if status != wire.StatusOK {
		return statusErr(status, payload)
	}
	return nil
}

// ResolveCommit asks the server whether the commit identified by token
// applied. Returns (true, nil) if the token is recorded as committed,
// (false, nil) if not (the transaction was aborted server-side or never
// committed — within the server's dedup TTL this is authoritative).
func (c *Client) ResolveCommit(token uint64) (bool, error) {
	status, payload, err := c.call(wire.OpCommit, wire.U32(0), wire.U64(token))
	if err != nil {
		return false, err
	}
	switch status {
	case wire.StatusOK:
		return true, nil
	case wire.StatusNotCommitted:
		return false, nil
	default:
		return false, statusErr(status, payload)
	}
}

// Abort discards tx.
func (c *Client) Abort(tx uint32) error {
	status, payload, err := c.call(wire.OpAbort, wire.U32(tx))
	if err != nil {
		return err
	}
	if status != wire.StatusOK {
		return statusErr(status, payload)
	}
	return nil
}

// Stats returns the server's per-shard health text.
func (c *Client) Stats() (string, error) {
	status, payload, err := c.call(wire.OpStats)
	if err != nil {
		return "", err
	}
	if status != wire.StatusOK {
		return "", statusErr(status, payload)
	}
	return string(payload), nil
}
