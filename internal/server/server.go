// Package server fronts a shard.Router with the wire protocol over TCP:
// connection and session management, per-session transaction tables,
// graceful drain on shutdown, and per-tenant admission control wired to
// the shards' space-governor watermarks (DESIGN.md §12).
//
// Concurrency model: one goroutine per connection, processing requests
// serially (the protocol has no request pipelining), so a session's
// transaction table needs no lock of its own. All cross-session state —
// the session registry, tenant counts, drain flag — lives behind one
// server mutex taken only at session boundaries and drain, never per
// request.
package server

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"net"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"mvpbt/internal/db"
	"mvpbt/internal/server/wire"
	"mvpbt/internal/shard"
	"mvpbt/internal/storage"
)

// AdmissionPolicy selects what happens to a new session that arrives while
// the server is overloaded (a shard past its soft space watermark) or at a
// session cap.
type AdmissionPolicy int

const (
	// AdmitReject refuses the session immediately with StatusAdmission.
	// The client decides whether to back off and retry.
	AdmitReject AdmissionPolicy = iota
	// AdmitQueue holds the HELLO until load clears or QueueTimeout
	// expires, then refuses. Bounds in-server concurrency at the cost of
	// connection-open latency.
	AdmitQueue
)

// Config tunes the server. The zero value serves on a random port with
// reject-on-overload admission.
type Config struct {
	// Addr is the TCP listen address (default "127.0.0.1:0").
	Addr string
	// MaxSessions caps concurrently admitted sessions (default 256).
	MaxSessions int
	// MaxSessionsPerTenant caps sessions per tenant name (default 64).
	MaxSessionsPerTenant int
	// MaxTxPerSession caps a session's open transaction table (default 64).
	MaxTxPerSession int
	// Admission picks reject-vs-queue behavior under overload.
	Admission AdmissionPolicy
	// QueueTimeout bounds how long AdmitQueue holds a HELLO (default 2s).
	QueueTimeout time.Duration
	// Overloaded overrides the overload probe; nil means the router's
	// PastSoftWatermark (any shard past its soft space watermark). Tests
	// and benchmarks inject synthetic overload here.
	Overloaded func() bool
	// DrainGrace is how long Drain lets admitted sessions keep issuing
	// requests before their connections are deadlined out (default 1s).
	// A Drain context with an earlier deadline shortens it.
	DrainGrace time.Duration
	// IdleTimeout reaps sessions that go this long without sending a
	// request (default 5m; negative disables). A reaped session's open
	// transactions are aborted like any disconnect's, so an abandoned
	// connection can neither pin the GC horizon nor hold admission slots.
	IdleTimeout time.Duration
	// WriteTimeout bounds each response write (default 30s): a peer that
	// stops draining its socket cannot wedge the connection goroutine.
	WriteTimeout time.Duration
	// CommitTokenTTL bounds how long a committed commit token stays in
	// the dedup table (default 5m). A retried COMMIT resolving after the
	// TTL may see StatusNotCommitted for a commit that applied — the
	// documented staleness bound clients must resolve within.
	CommitTokenTTL time.Duration
	// CommitTokenCap bounds the dedup table size (default 65536). At the
	// cap, expired entries are swept; if none are expired the oldest
	// entries are evicted (same staleness caveat as the TTL).
	CommitTokenCap int
	// WrapListener, if set, wraps the bound listener before Serve uses
	// it — the seam chaos testing (internal/server/chaos) and, later,
	// TLS plug into.
	WrapListener func(net.Listener) net.Listener
}

func (c Config) withDefaults() Config {
	if c.Addr == "" {
		c.Addr = "127.0.0.1:0"
	}
	if c.MaxSessions <= 0 {
		c.MaxSessions = 256
	}
	if c.MaxSessionsPerTenant <= 0 {
		c.MaxSessionsPerTenant = 64
	}
	if c.MaxTxPerSession <= 0 {
		c.MaxTxPerSession = 64
	}
	if c.QueueTimeout <= 0 {
		c.QueueTimeout = 2 * time.Second
	}
	if c.DrainGrace <= 0 {
		c.DrainGrace = time.Second
	}
	if c.IdleTimeout == 0 {
		c.IdleTimeout = 5 * time.Minute
	}
	if c.WriteTimeout <= 0 {
		c.WriteTimeout = 30 * time.Second
	}
	if c.CommitTokenTTL <= 0 {
		c.CommitTokenTTL = 5 * time.Minute
	}
	if c.CommitTokenCap <= 0 {
		c.CommitTokenCap = 1 << 16
	}
	return c
}

// Metrics counts session-level admission outcomes.
type Metrics struct {
	Admitted uint64 // sessions admitted (including after queueing)
	Rejected uint64 // sessions refused with StatusAdmission
	Queued   uint64 // sessions that waited in the admission queue
	Drained  uint64 // sessions refused with StatusDraining
}

// Server serves the wire protocol for one shard.Router.
type Server struct {
	r   *shard.Router
	cfg Config

	mu       sync.Mutex
	ln       net.Listener
	sessions map[*session]struct{}
	tenants  map[string]int
	draining bool

	wg sync.WaitGroup

	// tokens is the commit-token dedup table: tokens of committed
	// transactions, recorded BEFORE the commit's OK is written, so a
	// client that lost the ack can resolve the outcome by token. TTL- and
	// size-bounded (Config.CommitTokenTTL/Cap).
	tokMu  sync.Mutex
	tokens map[uint64]time.Time

	admitted atomic.Uint64
	rejected atomic.Uint64
	queued   atomic.Uint64
	drained  atomic.Uint64
}

// New builds a server over r. Call Listen then Serve.
func New(r *shard.Router, cfg Config) *Server {
	return &Server{
		r:        r,
		cfg:      cfg.withDefaults(),
		sessions: map[*session]struct{}{},
		tenants:  map[string]int{},
		tokens:   map[uint64]time.Time{},
	}
}

// SessionCount returns the number of currently admitted sessions.
func (s *Server) SessionCount() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.sessions)
}

// recordToken marks a commit token as applied. Called after the commit
// succeeds and before its OK frame is written: a lost ack therefore always
// finds its token here. The table is TTL-swept and size-bounded.
func (s *Server) recordToken(tok uint64) {
	now := time.Now()
	s.tokMu.Lock()
	defer s.tokMu.Unlock()
	if len(s.tokens) >= s.cfg.CommitTokenCap {
		for t, at := range s.tokens {
			if now.Sub(at) > s.cfg.CommitTokenTTL {
				delete(s.tokens, t)
			}
		}
		// Still at the cap with nothing expired: evict oldest entries —
		// bounded memory beats completeness, per the documented staleness
		// caveat.
		for len(s.tokens) >= s.cfg.CommitTokenCap {
			var oldT uint64
			var oldAt time.Time
			first := true
			for t, at := range s.tokens {
				if first || at.Before(oldAt) {
					oldT, oldAt, first = t, at, false
				}
			}
			delete(s.tokens, oldT)
		}
	}
	s.tokens[tok] = now
}

// tokenCommitted resolves a commit token, lazily expiring it.
func (s *Server) tokenCommitted(tok uint64) bool {
	s.tokMu.Lock()
	defer s.tokMu.Unlock()
	at, ok := s.tokens[tok]
	if !ok {
		return false
	}
	if time.Since(at) > s.cfg.CommitTokenTTL {
		delete(s.tokens, tok)
		return false
	}
	return true
}

// Listen binds the configured address and returns it (useful with :0).
func (s *Server) Listen() (net.Addr, error) {
	ln, err := net.Listen("tcp", s.cfg.Addr)
	if err != nil {
		return nil, err
	}
	addr := ln.Addr()
	if s.cfg.WrapListener != nil {
		ln = s.cfg.WrapListener(ln)
	}
	s.mu.Lock()
	s.ln = ln
	s.mu.Unlock()
	return addr, nil
}

// Serve accepts connections until the listener closes (Drain). It returns
// nil on a drain-initiated close.
func (s *Server) Serve() error {
	s.mu.Lock()
	ln := s.ln
	s.mu.Unlock()
	if ln == nil {
		return errors.New("server: Serve before Listen")
	}
	for {
		conn, err := ln.Accept()
		if err != nil {
			s.mu.Lock()
			draining := s.draining
			s.mu.Unlock()
			if draining || errors.Is(err, net.ErrClosed) {
				return nil
			}
			return err
		}
		s.wg.Add(1)
		go s.handleConn(conn)
	}
}

// Metrics returns a snapshot of the admission counters.
func (s *Server) Metrics() Metrics {
	return Metrics{
		Admitted: s.admitted.Load(),
		Rejected: s.rejected.Load(),
		Queued:   s.queued.Load(),
		Drained:  s.drained.Load(),
	}
}

// Drain gracefully shuts the server down: stop accepting, let admitted
// sessions keep working for the drain grace (or until ctx's deadline if
// sooner), then deadline their connections out. Open transactions of
// sessions that do not finish in time are aborted. Returns nil once every
// session has exited.
func (s *Server) Drain(ctx context.Context) error {
	s.mu.Lock()
	already := s.draining
	s.draining = true
	ln := s.ln
	grace := s.cfg.DrainGrace
	if dl, ok := ctx.Deadline(); ok {
		if until := time.Until(dl); until < grace {
			grace = until
		}
	}
	deadline := time.Now().Add(grace)
	for sess := range s.sessions {
		sess.forcedDL.Store(deadline.UnixNano())
		sess.conn.SetReadDeadline(deadline)
	}
	s.mu.Unlock()
	if !already && ln != nil {
		ln.Close()
	}
	done := make(chan struct{})
	go func() { s.wg.Wait(); close(done) }()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		s.mu.Lock()
		for sess := range s.sessions {
			sess.conn.Close()
		}
		s.mu.Unlock()
		<-done
		return ctx.Err()
	}
}

// session is one admitted connection: its tenant accounting slot and its
// private transaction table. Owned by the connection goroutine; forcedDL
// is the one field another goroutine (Drain) writes.
type session struct {
	conn   net.Conn
	tenant string
	txs    map[uint32]*shard.Tx
	// tokens maps open transaction ids to the commit token their Begin
	// carried (absent for token-less Begins).
	tokens map[uint32]uint64
	nextTx uint32
	// forcedDL is a drain-imposed read deadline (unix nanos; 0 = none).
	// The request loop clamps its idle deadline to it so a slow session
	// cannot extend its life past the drain grace.
	forcedDL atomic.Int64
}

// readDeadline computes the next request's read deadline from the idle
// timeout and any drain-forced deadline.
func (sess *session) readDeadline(idle time.Duration) time.Time {
	var dl time.Time
	if idle > 0 {
		dl = time.Now().Add(idle)
	}
	if f := sess.forcedDL.Load(); f != 0 {
		fdl := time.Unix(0, f)
		if dl.IsZero() || fdl.Before(dl) {
			dl = fdl
		}
	}
	return dl
}

// handleConn speaks the protocol on one connection: HELLO + admission,
// then a serial request loop. Always releases the session slot and aborts
// leftover transactions on the way out.
func (s *Server) handleConn(conn net.Conn) {
	defer s.wg.Done()
	defer conn.Close()
	br := bufio.NewReader(conn)
	bw := bufio.NewWriter(conn)

	// flush writes the buffered response under the write deadline: a peer
	// that stops draining its socket gets cut off, not waited on forever.
	flush := func() error {
		conn.SetWriteDeadline(time.Now().Add(s.cfg.WriteTimeout))
		err := bw.Flush()
		conn.SetWriteDeadline(time.Time{})
		return err
	}

	// First frame must be HELLO; it carries the protocol version and the
	// tenant name admission accounts against.
	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	op, payload, err := wire.ReadFrame(br)
	if err != nil || op != wire.OpHello {
		return
	}
	ver, rest, err := wire.TakeU32(payload)
	if err != nil {
		ver = 0 // short/legacy HELLO: version unknown
	}
	if ver != wire.ProtoVersion {
		wire.WriteFrame(bw, wire.StatusVersionMismatch, wire.U32(wire.ProtoVersion),
			[]byte(fmt.Sprintf("client speaks protocol %d, server speaks %d", ver, wire.ProtoVersion)))
		flush()
		return
	}
	conn.SetReadDeadline(time.Time{})
	tenant := string(rest)
	if tenant == "" {
		tenant = "default"
	}

	sess := &session{conn: conn, tenant: tenant, txs: map[uint32]*shard.Tx{}, tokens: map[uint32]uint64{}}
	status := s.admit(sess)
	if status != wire.StatusOK {
		wire.WriteFrame(bw, byte(status))
		flush()
		return
	}
	defer s.release(sess)
	if err := wire.WriteFrame(bw, wire.StatusOK, wire.U32(uint32(s.cfg.MaxTxPerSession))); err != nil {
		return
	}
	if err := flush(); err != nil {
		return
	}

	for {
		conn.SetReadDeadline(sess.readDeadline(s.cfg.IdleTimeout))
		op, payload, err := wire.ReadFrame(br)
		if err != nil {
			return // disconnect, idle/drain deadline, or malformed frame
		}
		if err := s.dispatch(sess, bw, op, payload); err != nil {
			return
		}
		if err := flush(); err != nil {
			return
		}
	}
}

// admit applies admission control to a new session and, on success,
// registers it. Queue mode polls: load changes are driven by other
// sessions finishing and by the governors' background accounting, neither
// of which has a wakeup hook, so a short poll keeps this simple.
func (s *Server) admit(sess *session) int {
	deadline := time.Now().Add(s.cfg.QueueTimeout)
	waited := false
	for {
		s.mu.Lock()
		if s.draining {
			s.mu.Unlock()
			s.drained.Add(1)
			return wire.StatusDraining
		}
		overloaded := false
		if s.cfg.Overloaded != nil {
			overloaded = s.cfg.Overloaded()
		} else {
			overloaded = s.r.PastSoftWatermark()
		}
		ok := !overloaded &&
			len(s.sessions) < s.cfg.MaxSessions &&
			s.tenants[sess.tenant] < s.cfg.MaxSessionsPerTenant
		if ok {
			s.sessions[sess] = struct{}{}
			s.tenants[sess.tenant]++
			s.mu.Unlock()
			s.admitted.Add(1)
			if waited {
				s.queued.Add(1)
			}
			return wire.StatusOK
		}
		s.mu.Unlock()
		if s.cfg.Admission != AdmitQueue || time.Now().After(deadline) {
			s.rejected.Add(1)
			return wire.StatusAdmission
		}
		waited = true
		time.Sleep(2 * time.Millisecond)
	}
}

// release returns the session's slot and aborts any transactions it left
// open.
func (s *Server) release(sess *session) {
	s.mu.Lock()
	delete(s.sessions, sess)
	s.tenants[sess.tenant]--
	if s.tenants[sess.tenant] <= 0 {
		delete(s.tenants, sess.tenant)
	}
	s.mu.Unlock()
	for id, tx := range sess.txs {
		tx.Abort()
		delete(sess.txs, id)
	}
}

// fail writes an error response, mapping a degraded shard to the typed
// StatusReadOnly | u32 shard | text form and a failed/recovering shard
// (or one mid fault storm) to the retriable StatusUnavailable | u32 shard
// | text form.
func fail(bw *bufio.Writer, err error) error {
	var se *shard.ShardError
	if errors.As(err, &se) {
		switch {
		case errors.Is(err, db.ErrReadOnly):
			return wire.WriteFrame(bw, wire.StatusReadOnly, wire.U32(uint32(se.Shard)), []byte(err.Error()))
		case errors.Is(err, shard.ErrShardUnavailable),
			errors.Is(err, storage.ErrIOFault),
			errors.Is(err, db.ErrClosed):
			return wire.WriteFrame(bw, wire.StatusUnavailable, wire.U32(uint32(se.Shard)), []byte(err.Error()))
		}
	}
	return wire.WriteFrame(bw, wire.StatusErr, []byte(err.Error()))
}

// dispatch handles one request frame. A returned error kills the
// connection (protocol-level damage); per-operation failures go back to
// the client as status frames.
func (s *Server) dispatch(sess *session, bw *bufio.Writer, op byte, payload []byte) error {
	// txFor resolves the leading transaction id: nil Tx means autocommit.
	txFor := func(p []byte) (uint32, *shard.Tx, []byte, bool) {
		id, rest, err := wire.TakeU32(p)
		if err != nil {
			return 0, nil, nil, false
		}
		if id == 0 {
			return 0, nil, rest, true
		}
		tx, ok := sess.txs[id]
		if !ok {
			return id, nil, rest, false
		}
		return id, tx, rest, true
	}

	switch op {
	case wire.OpGet:
		id, tx, key, ok := txFor(payload)
		if !ok {
			return wire.WriteFrame(bw, wire.StatusNoTx, []byte(fmt.Sprintf("no transaction %d", id)))
		}
		var v []byte
		var found bool
		var err error
		if tx == nil {
			v, found, err = s.r.Get(key)
		} else {
			v, found, err = tx.Get(key)
		}
		if err != nil {
			return fail(bw, err)
		}
		f := []byte{0}
		if found {
			f[0] = 1
		}
		return wire.WriteFrame(bw, wire.StatusOK, f, v)

	case wire.OpSet:
		id, tx, rest, ok := txFor(payload)
		if !ok {
			return wire.WriteFrame(bw, wire.StatusNoTx, []byte(fmt.Sprintf("no transaction %d", id)))
		}
		klen, rest, err := wire.TakeU32(rest)
		if err != nil || int(klen) > len(rest) {
			return wire.WriteFrame(bw, wire.StatusErr, []byte("malformed SET"))
		}
		key, val := rest[:klen], rest[klen:]
		if tx == nil {
			err = s.r.Put(key, val)
		} else {
			err = tx.Put(key, val)
		}
		if err != nil {
			return fail(bw, err)
		}
		return wire.WriteFrame(bw, wire.StatusOK)

	case wire.OpDel:
		id, tx, key, ok := txFor(payload)
		if !ok {
			return wire.WriteFrame(bw, wire.StatusNoTx, []byte(fmt.Sprintf("no transaction %d", id)))
		}
		var err error
		if tx == nil {
			err = s.r.Delete(key)
		} else {
			err = tx.Delete(key)
		}
		if err != nil {
			return fail(bw, err)
		}
		return wire.WriteFrame(bw, wire.StatusOK)

	case wire.OpScan:
		id, tx, rest, ok := txFor(payload)
		if !ok {
			return wire.WriteFrame(bw, wire.StatusNoTx, []byte(fmt.Sprintf("no transaction %d", id)))
		}
		limit, lo, err := wire.TakeU32(rest)
		if err != nil {
			return wire.WriteFrame(bw, wire.StatusErr, []byte("malformed SCAN"))
		}
		var n uint32
		var body []byte
		collect := func(k, v []byte) bool {
			body = append(body, wire.U32(uint32(len(k)))...)
			body = append(body, k...)
			body = append(body, wire.U32(uint32(len(v)))...)
			body = append(body, v...)
			n++
			return len(body) < wire.MaxFrame-64
		}
		if tx == nil {
			err = s.r.Scan(lo, int(limit), collect)
		} else {
			err = tx.Scan(lo, int(limit), collect)
		}
		if err != nil {
			return fail(bw, err)
		}
		return wire.WriteFrame(bw, wire.StatusOK, wire.U32(n), body)

	case wire.OpBegin:
		s.mu.Lock()
		draining := s.draining
		s.mu.Unlock()
		if draining {
			return wire.WriteFrame(bw, wire.StatusDraining, []byte("server draining"))
		}
		var token uint64
		if len(payload) >= 8 {
			token, _, _ = wire.TakeU64(payload)
		}
		if token != 0 && s.tokenCommitted(token) {
			return wire.WriteFrame(bw, wire.StatusAlreadyCommitted,
				[]byte(fmt.Sprintf("commit token %d already applied", token)))
		}
		if len(sess.txs) >= s.cfg.MaxTxPerSession {
			return wire.WriteFrame(bw, wire.StatusNoTx, []byte("transaction table full"))
		}
		tx, err := s.r.Begin()
		if err != nil {
			return fail(bw, err)
		}
		sess.nextTx++
		sess.txs[sess.nextTx] = tx
		if token != 0 {
			sess.tokens[sess.nextTx] = token
		}
		return wire.WriteFrame(bw, wire.StatusOK, wire.U32(sess.nextTx))

	case wire.OpCommit, wire.OpAbort:
		id, rest, err := wire.TakeU32(payload)
		if err != nil {
			return wire.WriteFrame(bw, wire.StatusErr, []byte("malformed COMMIT/ABORT"))
		}
		if id == 0 {
			// Token resolution: `Commit | u32 0 | u64 token` asks whether the
			// token's transaction committed — the lost-ack retry path. The
			// dedup table answers; nothing is applied either way.
			token, _, terr := wire.TakeU64(rest)
			if op != wire.OpCommit || terr != nil || token == 0 {
				return wire.WriteFrame(bw, wire.StatusErr, []byte("malformed COMMIT/ABORT"))
			}
			if s.tokenCommitted(token) {
				return wire.WriteFrame(bw, wire.StatusOK)
			}
			return wire.WriteFrame(bw, wire.StatusNotCommitted,
				[]byte(fmt.Sprintf("commit token %d not recorded", token)))
		}
		tx, ok := sess.txs[id]
		if !ok {
			return wire.WriteFrame(bw, wire.StatusNoTx, []byte(fmt.Sprintf("no transaction %d", id)))
		}
		token := sess.tokens[id]
		delete(sess.txs, id)
		delete(sess.tokens, id)
		if op == wire.OpAbort {
			tx.Abort()
			return wire.WriteFrame(bw, wire.StatusOK)
		}
		if err := tx.Commit(); err != nil {
			if errors.Is(err, shard.ErrTxInDoubt) {
				// The COMMIT decision is durable; only leg resolution is
				// pending. The transaction WILL commit, so record the token
				// first — the client confirms the outcome by resolving it.
				if token != 0 {
					s.recordToken(token)
				}
				return wire.WriteFrame(bw, wire.StatusInDoubt, []byte(err.Error()))
			}
			return fail(bw, err)
		}
		if token != 0 {
			// Record BEFORE writing the OK: if the connection dies under the
			// response, the client's token retry must find the commit.
			s.recordToken(token)
		}
		return wire.WriteFrame(bw, wire.StatusOK)

	case wire.OpStats:
		var sb strings.Builder
		for _, st := range s.r.Stats() {
			fmt.Fprintf(&sb, "shard %d (%s): live=%d soft=%d hard=%d readonly=%v wal{flushes=%d commits=%d batches=%d} dev{%s}\n",
				st.Shard, st.Dir, st.Space.Live, st.Space.Soft, st.Space.Hard, st.Space.ReadOnly,
				st.WAL.Flushes, st.WAL.Commits, st.WAL.Group.Batches, st.Device)
		}
		return wire.WriteFrame(bw, wire.StatusOK, []byte(sb.String()))

	default:
		return wire.WriteFrame(bw, wire.StatusErr, []byte(fmt.Sprintf("unknown opcode %d", op)))
	}
}
