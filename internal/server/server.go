// Package server fronts a shard.Router with the wire protocol over TCP:
// connection and session management, per-session transaction tables,
// graceful drain on shutdown, and per-tenant admission control wired to
// the shards' space-governor watermarks (DESIGN.md §12).
//
// Concurrency model: one goroutine per connection, processing requests
// serially (the protocol has no request pipelining), so a session's
// transaction table needs no lock of its own. All cross-session state —
// the session registry, tenant counts, drain flag — lives behind one
// server mutex taken only at session boundaries and drain, never per
// request.
package server

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"net"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"mvpbt/internal/db"
	"mvpbt/internal/server/wire"
	"mvpbt/internal/shard"
)

// AdmissionPolicy selects what happens to a new session that arrives while
// the server is overloaded (a shard past its soft space watermark) or at a
// session cap.
type AdmissionPolicy int

const (
	// AdmitReject refuses the session immediately with StatusAdmission.
	// The client decides whether to back off and retry.
	AdmitReject AdmissionPolicy = iota
	// AdmitQueue holds the HELLO until load clears or QueueTimeout
	// expires, then refuses. Bounds in-server concurrency at the cost of
	// connection-open latency.
	AdmitQueue
)

// Config tunes the server. The zero value serves on a random port with
// reject-on-overload admission.
type Config struct {
	// Addr is the TCP listen address (default "127.0.0.1:0").
	Addr string
	// MaxSessions caps concurrently admitted sessions (default 256).
	MaxSessions int
	// MaxSessionsPerTenant caps sessions per tenant name (default 64).
	MaxSessionsPerTenant int
	// MaxTxPerSession caps a session's open transaction table (default 64).
	MaxTxPerSession int
	// Admission picks reject-vs-queue behavior under overload.
	Admission AdmissionPolicy
	// QueueTimeout bounds how long AdmitQueue holds a HELLO (default 2s).
	QueueTimeout time.Duration
	// Overloaded overrides the overload probe; nil means the router's
	// PastSoftWatermark (any shard past its soft space watermark). Tests
	// and benchmarks inject synthetic overload here.
	Overloaded func() bool
	// DrainGrace is how long Drain lets admitted sessions keep issuing
	// requests before their connections are deadlined out (default 1s).
	// A Drain context with an earlier deadline shortens it.
	DrainGrace time.Duration
}

func (c Config) withDefaults() Config {
	if c.Addr == "" {
		c.Addr = "127.0.0.1:0"
	}
	if c.MaxSessions <= 0 {
		c.MaxSessions = 256
	}
	if c.MaxSessionsPerTenant <= 0 {
		c.MaxSessionsPerTenant = 64
	}
	if c.MaxTxPerSession <= 0 {
		c.MaxTxPerSession = 64
	}
	if c.QueueTimeout <= 0 {
		c.QueueTimeout = 2 * time.Second
	}
	if c.DrainGrace <= 0 {
		c.DrainGrace = time.Second
	}
	return c
}

// Metrics counts session-level admission outcomes.
type Metrics struct {
	Admitted uint64 // sessions admitted (including after queueing)
	Rejected uint64 // sessions refused with StatusAdmission
	Queued   uint64 // sessions that waited in the admission queue
	Drained  uint64 // sessions refused with StatusDraining
}

// Server serves the wire protocol for one shard.Router.
type Server struct {
	r   *shard.Router
	cfg Config

	mu       sync.Mutex
	ln       net.Listener
	sessions map[*session]struct{}
	tenants  map[string]int
	draining bool

	wg sync.WaitGroup

	admitted atomic.Uint64
	rejected atomic.Uint64
	queued   atomic.Uint64
	drained  atomic.Uint64
}

// New builds a server over r. Call Listen then Serve.
func New(r *shard.Router, cfg Config) *Server {
	return &Server{
		r:        r,
		cfg:      cfg.withDefaults(),
		sessions: map[*session]struct{}{},
		tenants:  map[string]int{},
	}
}

// Listen binds the configured address and returns it (useful with :0).
func (s *Server) Listen() (net.Addr, error) {
	ln, err := net.Listen("tcp", s.cfg.Addr)
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	s.ln = ln
	s.mu.Unlock()
	return ln.Addr(), nil
}

// Serve accepts connections until the listener closes (Drain). It returns
// nil on a drain-initiated close.
func (s *Server) Serve() error {
	s.mu.Lock()
	ln := s.ln
	s.mu.Unlock()
	if ln == nil {
		return errors.New("server: Serve before Listen")
	}
	for {
		conn, err := ln.Accept()
		if err != nil {
			s.mu.Lock()
			draining := s.draining
			s.mu.Unlock()
			if draining || errors.Is(err, net.ErrClosed) {
				return nil
			}
			return err
		}
		s.wg.Add(1)
		go s.handleConn(conn)
	}
}

// Metrics returns a snapshot of the admission counters.
func (s *Server) Metrics() Metrics {
	return Metrics{
		Admitted: s.admitted.Load(),
		Rejected: s.rejected.Load(),
		Queued:   s.queued.Load(),
		Drained:  s.drained.Load(),
	}
}

// Drain gracefully shuts the server down: stop accepting, let admitted
// sessions keep working for the drain grace (or until ctx's deadline if
// sooner), then deadline their connections out. Open transactions of
// sessions that do not finish in time are aborted. Returns nil once every
// session has exited.
func (s *Server) Drain(ctx context.Context) error {
	s.mu.Lock()
	already := s.draining
	s.draining = true
	ln := s.ln
	grace := s.cfg.DrainGrace
	if dl, ok := ctx.Deadline(); ok {
		if until := time.Until(dl); until < grace {
			grace = until
		}
	}
	deadline := time.Now().Add(grace)
	for sess := range s.sessions {
		sess.conn.SetReadDeadline(deadline)
	}
	s.mu.Unlock()
	if !already && ln != nil {
		ln.Close()
	}
	done := make(chan struct{})
	go func() { s.wg.Wait(); close(done) }()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		s.mu.Lock()
		for sess := range s.sessions {
			sess.conn.Close()
		}
		s.mu.Unlock()
		<-done
		return ctx.Err()
	}
}

// session is one admitted connection: its tenant accounting slot and its
// private transaction table. Owned by the connection goroutine.
type session struct {
	conn   net.Conn
	tenant string
	txs    map[uint32]*shard.Tx
	nextTx uint32
}

// handleConn speaks the protocol on one connection: HELLO + admission,
// then a serial request loop. Always releases the session slot and aborts
// leftover transactions on the way out.
func (s *Server) handleConn(conn net.Conn) {
	defer s.wg.Done()
	defer conn.Close()
	br := bufio.NewReader(conn)
	bw := bufio.NewWriter(conn)

	// First frame must be HELLO; it carries the tenant name admission
	// accounts against.
	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	op, payload, err := wire.ReadFrame(br)
	if err != nil || op != wire.OpHello {
		return
	}
	conn.SetReadDeadline(time.Time{})
	tenant := string(payload)
	if tenant == "" {
		tenant = "default"
	}

	sess := &session{conn: conn, tenant: tenant, txs: map[uint32]*shard.Tx{}}
	status := s.admit(sess)
	if status != wire.StatusOK {
		wire.WriteFrame(bw, byte(status))
		bw.Flush()
		return
	}
	defer s.release(sess)
	if err := wire.WriteFrame(bw, wire.StatusOK, wire.U32(uint32(s.cfg.MaxTxPerSession))); err != nil {
		return
	}
	if err := bw.Flush(); err != nil {
		return
	}

	for {
		op, payload, err := wire.ReadFrame(br)
		if err != nil {
			return // disconnect, drain deadline, or malformed frame
		}
		if err := s.dispatch(sess, bw, op, payload); err != nil {
			return
		}
		if err := bw.Flush(); err != nil {
			return
		}
	}
}

// admit applies admission control to a new session and, on success,
// registers it. Queue mode polls: load changes are driven by other
// sessions finishing and by the governors' background accounting, neither
// of which has a wakeup hook, so a short poll keeps this simple.
func (s *Server) admit(sess *session) int {
	deadline := time.Now().Add(s.cfg.QueueTimeout)
	waited := false
	for {
		s.mu.Lock()
		if s.draining {
			s.mu.Unlock()
			s.drained.Add(1)
			return wire.StatusDraining
		}
		overloaded := false
		if s.cfg.Overloaded != nil {
			overloaded = s.cfg.Overloaded()
		} else {
			overloaded = s.r.PastSoftWatermark()
		}
		ok := !overloaded &&
			len(s.sessions) < s.cfg.MaxSessions &&
			s.tenants[sess.tenant] < s.cfg.MaxSessionsPerTenant
		if ok {
			s.sessions[sess] = struct{}{}
			s.tenants[sess.tenant]++
			s.mu.Unlock()
			s.admitted.Add(1)
			if waited {
				s.queued.Add(1)
			}
			return wire.StatusOK
		}
		s.mu.Unlock()
		if s.cfg.Admission != AdmitQueue || time.Now().After(deadline) {
			s.rejected.Add(1)
			return wire.StatusAdmission
		}
		waited = true
		time.Sleep(2 * time.Millisecond)
	}
}

// release returns the session's slot and aborts any transactions it left
// open.
func (s *Server) release(sess *session) {
	s.mu.Lock()
	delete(s.sessions, sess)
	s.tenants[sess.tenant]--
	if s.tenants[sess.tenant] <= 0 {
		delete(s.tenants, sess.tenant)
	}
	s.mu.Unlock()
	for id, tx := range sess.txs {
		tx.Abort()
		delete(sess.txs, id)
	}
}

// fail writes an error response, mapping a degraded shard to the typed
// StatusReadOnly | u32 shard | text form.
func fail(bw *bufio.Writer, err error) error {
	var se *shard.ShardError
	if errors.As(err, &se) && errors.Is(err, db.ErrReadOnly) {
		return wire.WriteFrame(bw, wire.StatusReadOnly, wire.U32(uint32(se.Shard)), []byte(err.Error()))
	}
	return wire.WriteFrame(bw, wire.StatusErr, []byte(err.Error()))
}

// dispatch handles one request frame. A returned error kills the
// connection (protocol-level damage); per-operation failures go back to
// the client as status frames.
func (s *Server) dispatch(sess *session, bw *bufio.Writer, op byte, payload []byte) error {
	// txFor resolves the leading transaction id: nil Tx means autocommit.
	txFor := func(p []byte) (uint32, *shard.Tx, []byte, bool) {
		id, rest, err := wire.TakeU32(p)
		if err != nil {
			return 0, nil, nil, false
		}
		if id == 0 {
			return 0, nil, rest, true
		}
		tx, ok := sess.txs[id]
		if !ok {
			return id, nil, rest, false
		}
		return id, tx, rest, true
	}

	switch op {
	case wire.OpGet:
		id, tx, key, ok := txFor(payload)
		if !ok {
			return wire.WriteFrame(bw, wire.StatusNoTx, []byte(fmt.Sprintf("no transaction %d", id)))
		}
		var v []byte
		var found bool
		var err error
		if tx == nil {
			v, found, err = s.r.Get(key)
		} else {
			v, found, err = tx.Get(key)
		}
		if err != nil {
			return fail(bw, err)
		}
		f := []byte{0}
		if found {
			f[0] = 1
		}
		return wire.WriteFrame(bw, wire.StatusOK, f, v)

	case wire.OpSet:
		id, tx, rest, ok := txFor(payload)
		if !ok {
			return wire.WriteFrame(bw, wire.StatusNoTx, []byte(fmt.Sprintf("no transaction %d", id)))
		}
		klen, rest, err := wire.TakeU32(rest)
		if err != nil || int(klen) > len(rest) {
			return wire.WriteFrame(bw, wire.StatusErr, []byte("malformed SET"))
		}
		key, val := rest[:klen], rest[klen:]
		if tx == nil {
			err = s.r.Put(key, val)
		} else {
			err = tx.Put(key, val)
		}
		if err != nil {
			return fail(bw, err)
		}
		return wire.WriteFrame(bw, wire.StatusOK)

	case wire.OpDel:
		id, tx, key, ok := txFor(payload)
		if !ok {
			return wire.WriteFrame(bw, wire.StatusNoTx, []byte(fmt.Sprintf("no transaction %d", id)))
		}
		var err error
		if tx == nil {
			err = s.r.Delete(key)
		} else {
			err = tx.Delete(key)
		}
		if err != nil {
			return fail(bw, err)
		}
		return wire.WriteFrame(bw, wire.StatusOK)

	case wire.OpScan:
		id, tx, rest, ok := txFor(payload)
		if !ok {
			return wire.WriteFrame(bw, wire.StatusNoTx, []byte(fmt.Sprintf("no transaction %d", id)))
		}
		limit, lo, err := wire.TakeU32(rest)
		if err != nil {
			return wire.WriteFrame(bw, wire.StatusErr, []byte("malformed SCAN"))
		}
		var n uint32
		var body []byte
		collect := func(k, v []byte) bool {
			body = append(body, wire.U32(uint32(len(k)))...)
			body = append(body, k...)
			body = append(body, wire.U32(uint32(len(v)))...)
			body = append(body, v...)
			n++
			return len(body) < wire.MaxFrame-64
		}
		if tx == nil {
			err = s.r.Scan(lo, int(limit), collect)
		} else {
			err = tx.Scan(lo, int(limit), collect)
		}
		if err != nil {
			return fail(bw, err)
		}
		return wire.WriteFrame(bw, wire.StatusOK, wire.U32(n), body)

	case wire.OpBegin:
		s.mu.Lock()
		draining := s.draining
		s.mu.Unlock()
		if draining {
			return wire.WriteFrame(bw, wire.StatusDraining, []byte("server draining"))
		}
		if len(sess.txs) >= s.cfg.MaxTxPerSession {
			return wire.WriteFrame(bw, wire.StatusNoTx, []byte("transaction table full"))
		}
		tx, err := s.r.Begin()
		if err != nil {
			return fail(bw, err)
		}
		sess.nextTx++
		sess.txs[sess.nextTx] = tx
		return wire.WriteFrame(bw, wire.StatusOK, wire.U32(sess.nextTx))

	case wire.OpCommit, wire.OpAbort:
		id, rest, err := wire.TakeU32(payload)
		_ = rest
		if err != nil || id == 0 {
			return wire.WriteFrame(bw, wire.StatusErr, []byte("malformed COMMIT/ABORT"))
		}
		tx, ok := sess.txs[id]
		if !ok {
			return wire.WriteFrame(bw, wire.StatusNoTx, []byte(fmt.Sprintf("no transaction %d", id)))
		}
		delete(sess.txs, id)
		if op == wire.OpAbort {
			tx.Abort()
			return wire.WriteFrame(bw, wire.StatusOK)
		}
		if err := tx.Commit(); err != nil {
			return fail(bw, err)
		}
		return wire.WriteFrame(bw, wire.StatusOK)

	case wire.OpStats:
		var sb strings.Builder
		for _, st := range s.r.Stats() {
			fmt.Fprintf(&sb, "shard %d (%s): live=%d soft=%d hard=%d readonly=%v wal{flushes=%d commits=%d batches=%d} dev{%s}\n",
				st.Shard, st.Dir, st.Space.Live, st.Space.Soft, st.Space.Hard, st.Space.ReadOnly,
				st.WAL.Flushes, st.WAL.Commits, st.WAL.Group.Batches, st.Device)
		}
		return wire.WriteFrame(bw, wire.StatusOK, []byte(sb.String()))

	default:
		return wire.WriteFrame(bw, wire.StatusErr, []byte(fmt.Sprintf("unknown opcode %d", op)))
	}
}
