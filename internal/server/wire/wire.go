// Package wire defines the length-prefixed binary protocol spoken between
// mvpbt-server and its clients, and the frame codec both sides share
// (DESIGN.md §12).
//
// Every message — request or response — is one frame:
//
//	u32 big-endian length | u8 opcode (or status) | payload
//
// The length counts the opcode byte plus the payload, so an empty message
// is length 1. Integers inside payloads are big-endian; byte strings are
// u32-length-prefixed unless they are the frame's trailing field, in which
// case they run to the end of the frame (the frame length delimits them).
//
// Requests (client → server):
//
//	Hello  | tenant…                          → OK | u32 maxTx
//	Get    | u32 tx | key…                    → OK | u8 found | val…
//	Set    | u32 tx | u32 klen | key | val…   → OK
//	Del    | u32 tx | key…                    → OK
//	Scan   | u32 tx | u32 limit | lo…         → OK | u32 n | n×(u32 klen|key|u32 vlen|val)
//	Begin  |                                  → OK | u32 tx
//	Commit | u32 tx                           → OK
//	Abort  | u32 tx                           → OK
//	Stats  |                                  → OK | text…
//
// tx = 0 means autocommit (the single operation commits through the owning
// shard's ordinary durable path); tx > 0 names an entry in the session's
// transaction table created by Begin. The first frame on a connection must
// be Hello — it carries the tenant name admission control accounts
// sessions against.
//
// Error responses replace OK with a status code; the payload carries the
// error text, except StatusReadOnly, whose payload is the degraded shard
// number (u32) followed by the error text.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// Request opcodes.
const (
	OpHello  = 1
	OpGet    = 2
	OpSet    = 3
	OpDel    = 4
	OpScan   = 5
	OpBegin  = 6
	OpCommit = 7
	OpAbort  = 8
	OpStats  = 9
)

// Response status codes.
const (
	StatusOK        = 0 // request succeeded
	StatusErr       = 1 // generic failure; payload is the error text
	StatusReadOnly  = 2 // owning shard degraded read-only; payload = u32 shard | text
	StatusAdmission = 3 // session rejected by admission control
	StatusNoTx      = 4 // unknown transaction id (or transaction table full)
	StatusDraining  = 5 // server draining: no new sessions or transactions
)

// MaxFrame bounds a single frame (opcode + payload). Large scans paginate.
const MaxFrame = 16 << 20

// ErrFrameTooLarge is returned for frames past MaxFrame in either direction.
var ErrFrameTooLarge = errors.New("wire: frame exceeds 16MiB limit")

// ErrZeroLengthFrame is returned for a declared frame length of zero —
// every frame carries at least its opcode byte, so a zero length is a
// corrupt or malicious header, not an empty message.
var ErrZeroLengthFrame = errors.New("wire: zero-length frame")

// ErrTruncatedFrame is returned when a frame or field ends before its
// declared length: a payload cut short by the peer closing mid-frame, or
// a structured field (u32) extending past the frame end. Both sides treat
// it as a protocol violation and drop the connection; errors.Is
// distinguishes it from transport-level read failures.
var ErrTruncatedFrame = errors.New("wire: truncated frame")

// WriteFrame sends one frame: opcode/status byte plus payload segments.
func WriteFrame(w io.Writer, op byte, segs ...[]byte) error {
	n := 1
	for _, s := range segs {
		n += len(s)
	}
	if n > MaxFrame {
		return ErrFrameTooLarge
	}
	var hdr [5]byte
	binary.BigEndian.PutUint32(hdr[:4], uint32(n))
	hdr[4] = op
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	for _, s := range segs {
		if _, err := w.Write(s); err != nil {
			return err
		}
	}
	return nil
}

// ReadFrame reads one frame, returning its opcode/status byte and payload.
func ReadFrame(r io.Reader) (op byte, payload []byte, err error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return 0, nil, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n < 1 {
		return 0, nil, ErrZeroLengthFrame
	}
	if n > MaxFrame {
		return 0, nil, fmt.Errorf("%w (declared %d bytes)", ErrFrameTooLarge, n)
	}
	buf := make([]byte, n)
	if got, err := io.ReadFull(r, buf); err != nil {
		if errors.Is(err, io.ErrUnexpectedEOF) || errors.Is(err, io.EOF) {
			// The header promised n bytes; the stream ended first. A clean
			// EOF here is still a truncation — the frame had begun.
			return 0, nil, fmt.Errorf("%w: payload ended at %d of %d declared bytes", ErrTruncatedFrame, got, n)
		}
		return 0, nil, err
	}
	return buf[0], buf[1:], nil
}

// U32 encodes v as a 4-byte big-endian segment.
func U32(v uint32) []byte {
	var b [4]byte
	binary.BigEndian.PutUint32(b[:], v)
	return b[:]
}

// TakeU32 splits a big-endian u32 off the front of p.
func TakeU32(p []byte) (uint32, []byte, error) {
	if len(p) < 4 {
		return 0, nil, fmt.Errorf("%w (need u32, have %d bytes)", ErrTruncatedFrame, len(p))
	}
	return binary.BigEndian.Uint32(p[:4]), p[4:], nil
}
