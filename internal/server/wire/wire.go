// Package wire defines the length-prefixed binary protocol spoken between
// mvpbt-server and its clients, and the frame codec both sides share
// (DESIGN.md §12).
//
// Every message — request or response — is one frame:
//
//	u32 big-endian length | u8 opcode (or status) | payload
//
// The length counts the opcode byte plus the payload, so an empty message
// is length 1. Integers inside payloads are big-endian; byte strings are
// u32-length-prefixed unless they are the frame's trailing field, in which
// case they run to the end of the frame (the frame length delimits them).
//
// Requests (client → server):
//
//	Hello  | u32 version | tenant…            → OK | u32 maxTx
//	Get    | u32 tx | key…                    → OK | u8 found | val…
//	Set    | u32 tx | u32 klen | key | val…   → OK
//	Del    | u32 tx | key…                    → OK
//	Scan   | u32 tx | u32 limit | lo…         → OK | u32 n | n×(u32 klen|key|u32 vlen|val)
//	Begin  | [u64 token]                      → OK | u32 tx
//	Commit | u32 tx | [u64 token]             → OK
//	Abort  | u32 tx                           → OK
//	Stats  |                                  → OK | text…
//
// tx = 0 means autocommit (the single operation commits through the owning
// shard's ordinary durable path); tx > 0 names an entry in the session's
// transaction table created by Begin. The first frame on a connection must
// be Hello — it carries the protocol version (ProtoVersion; a mismatch is
// refused with StatusVersionMismatch naming both versions) and the tenant
// name admission control accounts sessions against.
//
// The optional Begin/Commit token is the idempotent COMMIT protocol for
// self-healing clients: a client-generated 64-bit commit id carried on
// Begin is recorded server-side when (and only when) that transaction
// commits, BEFORE the OK is written — so a COMMIT whose ack was lost to a
// dead connection can be retried as `Commit | u32 0 | u64 token`, which
// resolves against the dedup table: OK if the commit was applied (it is
// NOT applied again), StatusNotCommitted if it never was. A Begin reusing
// a committed token is refused with StatusAlreadyCommitted. Dedup entries
// live for the server's configured TTL (bounded table; see DESIGN.md §14):
// a token older than the TTL may resolve StatusNotCommitted even though
// the commit applied, so clients resolve promptly or re-read.
//
// Error responses replace OK with a status code; the payload carries the
// error text, except StatusReadOnly and StatusUnavailable, whose payloads
// are the shard number (u32) followed by the error text, and
// StatusVersionMismatch, whose payload is the server's version (u32)
// followed by the error text.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// ProtoVersion is the protocol revision both sides must speak. Version 2
// added the Hello version field itself, commit tokens, and the
// Unavailable/VersionMismatch/NotCommitted/AlreadyCommitted statuses.
// (Version 1, the PR 7 protocol, had no version field: its Hello payload
// began directly with the tenant name.)
const ProtoVersion = 2

// Request opcodes.
const (
	OpHello  = 1
	OpGet    = 2
	OpSet    = 3
	OpDel    = 4
	OpScan   = 5
	OpBegin  = 6
	OpCommit = 7
	OpAbort  = 8
	OpStats  = 9
)

// Response status codes.
const (
	StatusOK        = 0 // request succeeded
	StatusErr       = 1 // generic failure; payload is the error text
	StatusReadOnly  = 2 // owning shard degraded read-only; payload = u32 shard | text
	StatusAdmission = 3 // session rejected by admission control
	StatusNoTx      = 4 // unknown transaction id (or transaction table full)
	StatusDraining  = 5 // server draining: no new sessions or transactions
	// StatusVersionMismatch refuses a Hello whose protocol version is not
	// the server's; payload = u32 server version | text naming both.
	StatusVersionMismatch = 6
	// StatusUnavailable: the owning shard is failed or recovering (the
	// supervisor is restarting it) — retriable after a short backoff;
	// payload = u32 shard | text.
	StatusUnavailable = 7
	// StatusNotCommitted answers a token-resolution Commit (tx = 0): the
	// token was never recorded as committed.
	StatusNotCommitted = 8
	// StatusAlreadyCommitted refuses a Begin reusing a token the dedup
	// table has recorded as committed.
	StatusAlreadyCommitted = 9
	// StatusInDoubt answers a multi-shard Commit whose COMMIT decision is
	// durable in the coordinator log but whose legs are still being
	// resolved (a participant failed mid-protocol). The transaction WILL
	// commit — the server records the commit token before replying, so the
	// client confirms the outcome with a token-resolution Commit.
	StatusInDoubt = 10
)

// MaxFrame bounds a single frame (opcode + payload). Large scans paginate.
const MaxFrame = 16 << 20

// ErrFrameTooLarge is returned for frames past MaxFrame in either direction.
var ErrFrameTooLarge = errors.New("wire: frame exceeds 16MiB limit")

// ErrZeroLengthFrame is returned for a declared frame length of zero —
// every frame carries at least its opcode byte, so a zero length is a
// corrupt or malicious header, not an empty message.
var ErrZeroLengthFrame = errors.New("wire: zero-length frame")

// ErrTruncatedFrame is returned when a frame or field ends before its
// declared length: a payload cut short by the peer closing mid-frame, or
// a structured field (u32) extending past the frame end. Both sides treat
// it as a protocol violation and drop the connection; errors.Is
// distinguishes it from transport-level read failures.
var ErrTruncatedFrame = errors.New("wire: truncated frame")

// WriteFrame sends one frame: opcode/status byte plus payload segments.
func WriteFrame(w io.Writer, op byte, segs ...[]byte) error {
	n := 1
	for _, s := range segs {
		n += len(s)
	}
	if n > MaxFrame {
		return ErrFrameTooLarge
	}
	var hdr [5]byte
	binary.BigEndian.PutUint32(hdr[:4], uint32(n))
	hdr[4] = op
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	for _, s := range segs {
		if _, err := w.Write(s); err != nil {
			return err
		}
	}
	return nil
}

// ReadFrame reads one frame, returning its opcode/status byte and payload.
func ReadFrame(r io.Reader) (op byte, payload []byte, err error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return 0, nil, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n < 1 {
		return 0, nil, ErrZeroLengthFrame
	}
	if n > MaxFrame {
		return 0, nil, fmt.Errorf("%w (declared %d bytes)", ErrFrameTooLarge, n)
	}
	buf := make([]byte, n)
	if got, err := io.ReadFull(r, buf); err != nil {
		if errors.Is(err, io.ErrUnexpectedEOF) || errors.Is(err, io.EOF) {
			// The header promised n bytes; the stream ended first. A clean
			// EOF here is still a truncation — the frame had begun.
			return 0, nil, fmt.Errorf("%w: payload ended at %d of %d declared bytes", ErrTruncatedFrame, got, n)
		}
		return 0, nil, err
	}
	return buf[0], buf[1:], nil
}

// U32 encodes v as a 4-byte big-endian segment.
func U32(v uint32) []byte {
	var b [4]byte
	binary.BigEndian.PutUint32(b[:], v)
	return b[:]
}

// TakeU32 splits a big-endian u32 off the front of p.
func TakeU32(p []byte) (uint32, []byte, error) {
	if len(p) < 4 {
		return 0, nil, fmt.Errorf("%w (need u32, have %d bytes)", ErrTruncatedFrame, len(p))
	}
	return binary.BigEndian.Uint32(p[:4]), p[4:], nil
}

// U64 encodes v as an 8-byte big-endian segment (commit tokens).
func U64(v uint64) []byte {
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], v)
	return b[:]
}

// TakeU64 splits a big-endian u64 off the front of p.
func TakeU64(p []byte) (uint64, []byte, error) {
	if len(p) < 8 {
		return 0, nil, fmt.Errorf("%w (need u64, have %d bytes)", ErrTruncatedFrame, len(p))
	}
	return binary.BigEndian.Uint64(p[:8]), p[8:], nil
}
