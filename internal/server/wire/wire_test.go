package wire

import (
	"bytes"
	"errors"
	"testing"
)

func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteFrame(&buf, OpSet, U32(7), []byte("key"), []byte("value")); err != nil {
		t.Fatal(err)
	}
	op, payload, err := ReadFrame(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if op != OpSet {
		t.Fatalf("op %d, want %d", op, OpSet)
	}
	id, rest, err := TakeU32(payload)
	if err != nil || id != 7 {
		t.Fatalf("tx id %d err %v", id, err)
	}
	if string(rest) != "keyvalue" {
		t.Fatalf("payload %q", rest)
	}
}

func TestFrameEmptyPayload(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteFrame(&buf, OpBegin); err != nil {
		t.Fatal(err)
	}
	if buf.Len() != 5 {
		t.Fatalf("empty frame is %d bytes on the wire, want 5", buf.Len())
	}
	op, payload, err := ReadFrame(&buf)
	if err != nil || op != OpBegin || len(payload) != 0 {
		t.Fatalf("round-trip: op=%d payload=%q err=%v", op, payload, err)
	}
}

func TestFrameTooLarge(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteFrame(&buf, OpSet, make([]byte, MaxFrame)); !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("oversized write: %v, want ErrFrameTooLarge", err)
	}
	if buf.Len() != 0 {
		t.Fatal("oversized frame partially written")
	}
	// An oversized length on the read side is rejected before allocation.
	buf.Write([]byte{0xFF, 0xFF, 0xFF, 0xFF})
	if _, _, err := ReadFrame(&buf); !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("oversized read: %v, want ErrFrameTooLarge", err)
	}
}

func TestTakeU32Truncated(t *testing.T) {
	if _, _, err := TakeU32([]byte{1, 2}); err == nil {
		t.Fatal("truncated u32 accepted")
	}
}
