package wire

import (
	"bytes"
	"errors"
	"strings"
	"testing"
)

func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteFrame(&buf, OpSet, U32(7), []byte("key"), []byte("value")); err != nil {
		t.Fatal(err)
	}
	op, payload, err := ReadFrame(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if op != OpSet {
		t.Fatalf("op %d, want %d", op, OpSet)
	}
	id, rest, err := TakeU32(payload)
	if err != nil || id != 7 {
		t.Fatalf("tx id %d err %v", id, err)
	}
	if string(rest) != "keyvalue" {
		t.Fatalf("payload %q", rest)
	}
}

func TestFrameEmptyPayload(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteFrame(&buf, OpBegin); err != nil {
		t.Fatal(err)
	}
	if buf.Len() != 5 {
		t.Fatalf("empty frame is %d bytes on the wire, want 5", buf.Len())
	}
	op, payload, err := ReadFrame(&buf)
	if err != nil || op != OpBegin || len(payload) != 0 {
		t.Fatalf("round-trip: op=%d payload=%q err=%v", op, payload, err)
	}
}

func TestFrameTooLarge(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteFrame(&buf, OpSet, make([]byte, MaxFrame)); !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("oversized write: %v, want ErrFrameTooLarge", err)
	}
	if buf.Len() != 0 {
		t.Fatal("oversized frame partially written")
	}
	// An oversized length on the read side is rejected before allocation.
	buf.Write([]byte{0xFF, 0xFF, 0xFF, 0xFF})
	if _, _, err := ReadFrame(&buf); !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("oversized read: %v, want ErrFrameTooLarge", err)
	}
}

func TestTakeU32Truncated(t *testing.T) {
	for _, short := range [][]byte{nil, {}, {1}, {1, 2}, {1, 2, 3}} {
		if _, _, err := TakeU32(short); !errors.Is(err, ErrTruncatedFrame) {
			t.Fatalf("TakeU32(%d bytes): %v, want ErrTruncatedFrame", len(short), err)
		}
	}
}

// A declared length of zero is a corrupt header, not an empty message —
// every frame carries at least the opcode byte.
func TestFrameZeroLength(t *testing.T) {
	buf := bytes.NewBuffer([]byte{0, 0, 0, 0})
	if _, _, err := ReadFrame(buf); !errors.Is(err, ErrZeroLengthFrame) {
		t.Fatalf("zero-length frame: %v, want ErrZeroLengthFrame", err)
	}
}

// A header that declares more bytes than the stream delivers is a typed
// truncation, whether the stream dies mid-payload or ends cleanly.
func TestFrameTruncatedPayload(t *testing.T) {
	// Declared 10 bytes, delivered 3.
	buf := bytes.NewBuffer(append([]byte{0, 0, 0, 10}, OpSet, 'a', 'b'))
	if _, _, err := ReadFrame(buf); !errors.Is(err, ErrTruncatedFrame) {
		t.Fatalf("truncated payload: %v, want ErrTruncatedFrame", err)
	}
	// Declared 5 bytes, delivered none (clean EOF right after the header).
	buf = bytes.NewBuffer([]byte{0, 0, 0, 5})
	if _, _, err := ReadFrame(buf); !errors.Is(err, ErrTruncatedFrame) {
		t.Fatalf("headerless truncation: %v, want ErrTruncatedFrame", err)
	}
	// A truncated HEADER is not a truncated frame: no frame had begun, so
	// the io error passes through for the session loop's EOF handling.
	buf = bytes.NewBuffer([]byte{0, 0})
	if _, _, err := ReadFrame(buf); errors.Is(err, ErrTruncatedFrame) {
		t.Fatalf("truncated header misreported as truncated frame: %v", err)
	}
}

// An oversized declared length is rejected before any allocation, with
// the declared size in the message for the operator.
func TestFrameOversizedDeclared(t *testing.T) {
	buf := bytes.NewBuffer([]byte{0xFF, 0xFF, 0xFF, 0xFF})
	_, _, err := ReadFrame(buf)
	if !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("oversized declared length: %v, want ErrFrameTooLarge", err)
	}
	if !strings.Contains(err.Error(), "4294967295") {
		t.Fatalf("error does not name the declared size: %v", err)
	}
	// One past the limit is rejected; the limit itself is accepted (the
	// payload below is missing, so acceptance shows up as truncation).
	buf = bytes.NewBuffer(U32(MaxFrame + 1))
	if _, _, err := ReadFrame(buf); !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("MaxFrame+1: %v, want ErrFrameTooLarge", err)
	}
	buf = bytes.NewBuffer(U32(MaxFrame))
	if _, _, err := ReadFrame(buf); !errors.Is(err, ErrTruncatedFrame) {
		t.Fatalf("MaxFrame exactly: %v, want ErrTruncatedFrame (accepted, then cut short)", err)
	}
}

func TestU64RoundTrip(t *testing.T) {
	for _, v := range []uint64{0, 1, 0xDEADBEEF, 1<<63 | 42, ^uint64(0)} {
		buf := append(U64(v), []byte("tail")...)
		got, rest, err := TakeU64(buf)
		if err != nil || got != v || string(rest) != "tail" {
			t.Fatalf("TakeU64(U64(%d)) = %d, %q, %v", v, got, rest, err)
		}
	}
}

func TestTakeU64Truncated(t *testing.T) {
	for n := 0; n < 8; n++ {
		if _, _, err := TakeU64(make([]byte, n)); !errors.Is(err, ErrTruncatedFrame) {
			t.Fatalf("TakeU64(%d bytes): %v, want ErrTruncatedFrame", n, err)
		}
	}
}
