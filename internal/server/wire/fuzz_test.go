package wire

import (
	"bytes"
	"errors"
	"io"
	"testing"
)

// FuzzReadFrame throws arbitrary byte streams at the frame decoder — the
// first thing on the server that touches untrusted network input. The
// decoder must never panic, never allocate past MaxFrame (a hostile header
// may declare 4GiB), and classify every malformed stream as exactly one of
// the typed errors (or a plain read error from the stream itself). A
// decoded frame must round-trip: re-encoding it reproduces the bytes
// consumed, so decode is a true inverse of WriteFrame.
//
// Run the full fuzzer with:
//
//	go test -fuzz=FuzzReadFrame -fuzztime=30s ./internal/server/wire/
func FuzzReadFrame(f *testing.F) {
	// Seed corpus: the malformed/truncated/oversized shapes the unit tests
	// pin down, plus valid frames of each flavor.
	valid := func(op byte, segs ...[]byte) []byte {
		var buf bytes.Buffer
		if err := WriteFrame(&buf, op, segs...); err != nil {
			f.Fatalf("seed frame: %v", err)
		}
		return buf.Bytes()
	}
	f.Add(valid(OpHello, U32(ProtoVersion), []byte("tenant")))
	f.Add(valid(OpSet, U32(3), []byte("key"), []byte("val")))
	f.Add(valid(OpCommit, U32(0), U64(0xdeadbeef)))
	f.Add(valid(OpStats))
	f.Add([]byte{0, 0, 0, 1, OpGet})               // minimal frame: opcode only
	f.Add([]byte{0, 0, 0, 0})                      // zero-length frame
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF})          // 4GiB declared length
	f.Add(append([]byte{0, 0, 0, 10}, OpSet, 'a')) // declares 10, delivers 2
	f.Add([]byte{0, 0, 0, 5})                      // header only, no payload
	f.Add([]byte{0, 0})                            // truncated header
	f.Add(U32(MaxFrame + 1))                       // one past the limit
	f.Add(U32(MaxFrame))                           // at the limit, then EOF
	f.Add(append(valid(OpGet, []byte("k")), valid(OpAbort, U32(7))...)) // two frames back to back

	f.Fuzz(func(t *testing.T, data []byte) {
		r := bytes.NewReader(data)
		for {
			before := r.Len()
			op, payload, err := ReadFrame(r)
			if err != nil {
				if errors.Is(err, io.EOF) && before == 0 {
					return // clean end of stream between frames
				}
				// Every failure on a finite in-memory stream must be one of
				// the decoder's typed errors or the header read ending early.
				if !errors.Is(err, ErrZeroLengthFrame) &&
					!errors.Is(err, ErrFrameTooLarge) &&
					!errors.Is(err, ErrTruncatedFrame) &&
					!errors.Is(err, io.EOF) &&
					!errors.Is(err, io.ErrUnexpectedEOF) {
					t.Fatalf("ReadFrame: untyped error %v (input %x)", err, data)
				}
				return
			}
			consumed := before - r.Len()
			if got := 4 + 1 + len(payload); consumed != got {
				t.Fatalf("ReadFrame consumed %d bytes, frame accounts for %d", consumed, got)
			}
			if len(payload)+1 > MaxFrame {
				t.Fatalf("ReadFrame returned %d payload bytes past MaxFrame", len(payload))
			}
			// Round-trip: re-encoding the decoded frame must reproduce the
			// consumed bytes exactly.
			var re bytes.Buffer
			if err := WriteFrame(&re, op, payload); err != nil {
				t.Fatalf("re-encoding decoded frame: %v", err)
			}
			start := len(data) - before
			if !bytes.Equal(re.Bytes(), data[start:start+consumed]) {
				t.Fatalf("round-trip mismatch:\n consumed %x\n re-encoded %x",
					data[start:start+consumed], re.Bytes())
			}
		}
	})
}
