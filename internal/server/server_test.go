package server_test

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	"mvpbt/internal/db"
	"mvpbt/internal/server"
	"mvpbt/internal/server/shardclient"
	"mvpbt/internal/shard"
)

// startServer builds a router with n shards and serves it on a random
// port, returning the address for clients.
func startServer(t *testing.T, n int, cfg server.Config) (*shard.Router, *server.Server, string) {
	t.Helper()
	r, err := shard.New(shard.Config{
		Shards: n,
		Engine: db.Config{
			BufferPages:          256,
			PartitionBufferBytes: 64 << 10,
			EnableWAL:            true,
			GroupCommit:          db.GroupCommitConfig{Enabled: true},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	srv := server.New(r, cfg)
	addr, err := srv.Listen()
	if err != nil {
		r.Close()
		t.Fatal(err)
	}
	serveDone := make(chan error, 1)
	go func() { serveDone <- srv.Serve() }()
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		srv.Drain(ctx)
		if err := <-serveDone; err != nil {
			t.Errorf("Serve: %v", err)
		}
		r.Close()
	})
	return r, srv, addr.String()
}

func TestServerEndToEnd(t *testing.T) {
	_, _, addr := startServer(t, 2, server.Config{})
	c, err := shardclient.Dial(addr, "t1")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	// Autocommit writes and reads.
	for i := 0; i < 50; i++ {
		if err := c.Set(0, []byte(fmt.Sprintf("k-%03d", i)), []byte(fmt.Sprintf("v-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	v, ok, err := c.Get(0, []byte("k-007"))
	if err != nil || !ok || string(v) != "v-7" {
		t.Fatalf("get: %q %v %v", v, ok, err)
	}
	if _, ok, _ := c.Get(0, []byte("missing")); ok {
		t.Fatal("phantom key")
	}
	if err := c.Del(0, []byte("k-000")); err != nil {
		t.Fatal(err)
	}
	if _, ok, _ := c.Get(0, []byte("k-000")); ok {
		t.Fatal("deleted key visible")
	}

	// Scan in global order across shards.
	kvs, err := c.Scan(0, []byte("k-"), 1000)
	if err != nil {
		t.Fatal(err)
	}
	if len(kvs) != 49 {
		t.Fatalf("scan got %d pairs, want 49", len(kvs))
	}
	for i := 1; i < len(kvs); i++ {
		if string(kvs[i-1].Key) >= string(kvs[i].Key) {
			t.Fatalf("scan out of order at %d: %q >= %q", i, kvs[i-1].Key, kvs[i].Key)
		}
	}

	// Transactional cross-shard write: invisible to a second session until
	// commit, then visible.
	c2, err := shardclient.Dial(addr, "t2")
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	tx, err := c.Begin()
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Set(tx, []byte("pair-a"), []byte("pv")); err != nil {
		t.Fatal(err)
	}
	if err := c.Set(tx, []byte("pair-b"), []byte("pv")); err != nil {
		t.Fatal(err)
	}
	if v, ok, _ := c.Get(tx, []byte("pair-a")); !ok || string(v) != "pv" {
		t.Fatalf("tx does not read its own write: %q %v", v, ok)
	}
	if _, ok, _ := c2.Get(0, []byte("pair-a")); ok {
		t.Fatal("uncommitted write visible to other session")
	}
	if err := c.Commit(tx); err != nil {
		t.Fatal(err)
	}
	va, oka, _ := c2.Get(0, []byte("pair-a"))
	vb, okb, _ := c2.Get(0, []byte("pair-b"))
	if !oka || !okb || string(va) != "pv" || string(vb) != "pv" {
		t.Fatalf("committed pair not visible: %q/%v %q/%v", va, oka, vb, okb)
	}

	// Abort discards.
	tx2, err := c.Begin()
	if err != nil {
		t.Fatal(err)
	}
	c.Set(tx2, []byte("gone"), []byte("x"))
	if err := c.Abort(tx2); err != nil {
		t.Fatal(err)
	}
	if _, ok, _ := c.Get(0, []byte("gone")); ok {
		t.Fatal("aborted write visible")
	}

	// Unknown transaction ids are typed.
	if err := c.Commit(999); !errors.Is(err, shardclient.ErrNoTx) {
		t.Fatalf("commit of unknown tx: %v, want ErrNoTx", err)
	}

	// Stats text mentions every shard.
	st, err := c.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st == "" {
		t.Fatal("empty stats")
	}
}

func TestServerReadOnlyShardStatus(t *testing.T) {
	r, _, addr := startServer(t, 2, server.Config{})
	c, err := shardclient.Dial(addr, "t")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	// Find a key on shard 1, degrade shard 1, and watch the typed status
	// come back over the wire.
	var key []byte
	for i := 0; ; i++ {
		key = []byte(fmt.Sprintf("ro-%04d", i))
		if r.ShardOf(key) == 1 {
			break
		}
	}
	r.Shard(1).Engine.ForceReadOnly(true)
	defer r.Shard(1).Engine.ForceReadOnly(false)

	err = c.Set(0, key, []byte("x"))
	var roe *shardclient.ReadOnlyError
	if !errors.As(err, &roe) {
		t.Fatalf("set on degraded shard: %v, want *ReadOnlyError", err)
	}
	if roe.Shard != 1 {
		t.Fatalf("ReadOnlyError names shard %d, want 1", roe.Shard)
	}
	// The session survives the error.
	if err := c.Set(0, []byte("other-shard-key-0"), []byte("y")); err != nil && r.ShardOf([]byte("other-shard-key-0")) == 0 {
		t.Fatalf("healthy shard write failed: %v", err)
	}
}

func TestServerAdmissionReject(t *testing.T) {
	var overloaded atomic.Bool
	_, srv, addr := startServer(t, 1, server.Config{
		Admission:  server.AdmitReject,
		Overloaded: func() bool { return overloaded.Load() },
	})

	overloaded.Store(true)
	if _, err := shardclient.Dial(addr, "t"); !errors.Is(err, shardclient.ErrAdmission) {
		t.Fatalf("dial under overload: %v, want ErrAdmission", err)
	}
	overloaded.Store(false)
	c, err := shardclient.Dial(addr, "t")
	if err != nil {
		t.Fatalf("dial after overload cleared: %v", err)
	}
	c.Close()
	m := srv.Metrics()
	if m.Rejected != 1 || m.Admitted != 1 {
		t.Fatalf("metrics %+v, want 1 rejected / 1 admitted", m)
	}
}

func TestServerAdmissionQueue(t *testing.T) {
	var overloaded atomic.Bool
	_, srv, addr := startServer(t, 1, server.Config{
		Admission:    server.AdmitQueue,
		QueueTimeout: 5 * time.Second,
		Overloaded:   func() bool { return overloaded.Load() },
	})

	overloaded.Store(true)
	// Clear the overload while the HELLO is queued: the session must be
	// admitted, not rejected.
	go func() {
		time.Sleep(50 * time.Millisecond)
		overloaded.Store(false)
	}()
	c, err := shardclient.Dial(addr, "t")
	if err != nil {
		t.Fatalf("queued dial: %v", err)
	}
	if err := c.Set(0, []byte("k"), []byte("v")); err != nil {
		t.Fatal(err)
	}
	c.Close()
	if m := srv.Metrics(); m.Queued != 1 || m.Admitted != 1 {
		t.Fatalf("metrics %+v, want 1 queued / 1 admitted", m)
	}
}

func TestServerAdmissionQueueTimeout(t *testing.T) {
	_, _, addr := startServer(t, 1, server.Config{
		Admission:    server.AdmitQueue,
		QueueTimeout: 50 * time.Millisecond,
		Overloaded:   func() bool { return true },
	})
	start := time.Now()
	if _, err := shardclient.Dial(addr, "t"); !errors.Is(err, shardclient.ErrAdmission) {
		t.Fatalf("dial under permanent overload: %v, want ErrAdmission", err)
	}
	if time.Since(start) < 50*time.Millisecond {
		t.Fatal("queue rejected before its timeout")
	}
}

func TestServerPerTenantCap(t *testing.T) {
	_, _, addr := startServer(t, 1, server.Config{
		MaxSessionsPerTenant: 1,
	})
	c1, err := shardclient.Dial(addr, "acme")
	if err != nil {
		t.Fatal(err)
	}
	defer c1.Close()
	// Same tenant: over its cap.
	if _, err := shardclient.Dial(addr, "acme"); !errors.Is(err, shardclient.ErrAdmission) {
		t.Fatalf("second acme session: %v, want ErrAdmission", err)
	}
	// Different tenant: admitted.
	c2, err := shardclient.Dial(addr, "globex")
	if err != nil {
		t.Fatalf("other tenant refused: %v", err)
	}
	c2.Close()
	// Releasing acme's slot re-admits acme.
	c1.Close()
	deadline := time.Now().Add(2 * time.Second)
	for {
		c3, err := shardclient.Dial(addr, "acme")
		if err == nil {
			c3.Close()
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("acme never re-admitted: %v", err)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestServerDrain(t *testing.T) {
	r, err := shard.New(shard.Config{
		Shards: 2,
		Engine: db.Config{
			BufferPages:          256,
			PartitionBufferBytes: 64 << 10,
			EnableWAL:            true,
			GroupCommit:          db.GroupCommitConfig{Enabled: true},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	srv := server.New(r, server.Config{DrainGrace: 500 * time.Millisecond})
	addr, err := srv.Listen()
	if err != nil {
		t.Fatal(err)
	}
	serveDone := make(chan error, 1)
	go func() { serveDone <- srv.Serve() }()

	c, err := shardclient.Dial(addr.String(), "t")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	tx, err := c.Begin()
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Set(tx, []byte("drain-a"), []byte("v")); err != nil {
		t.Fatal(err)
	}
	if err := c.Set(tx, []byte("drain-b"), []byte("v")); err != nil {
		t.Fatal(err)
	}

	drainDone := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		drainDone <- srv.Drain(ctx)
	}()
	// Give Drain a moment to close the listener.
	time.Sleep(20 * time.Millisecond)

	// New connections are refused during drain (listener closed).
	if _, err := shardclient.DialTimeout(addr.String(), "t2", 200*time.Millisecond); err == nil {
		t.Fatal("new session admitted during drain")
	}
	// The admitted session finishes its in-flight transaction.
	if err := c.Commit(tx); err != nil {
		t.Fatalf("in-flight commit during drain: %v", err)
	}
	// New transactions are refused.
	if _, err := c.Begin(); !errors.Is(err, shardclient.ErrDraining) {
		t.Fatalf("begin during drain: %v, want ErrDraining", err)
	}
	c.Close()

	if err := <-drainDone; err != nil {
		t.Fatalf("drain: %v", err)
	}
	if err := <-serveDone; err != nil {
		t.Fatalf("serve after drain: %v", err)
	}
	// The drained commit is durable: the data survives in the router.
	if v, ok, _ := r.Get([]byte("drain-a")); !ok || string(v) != "v" {
		t.Fatalf("drained commit lost: %q %v", v, ok)
	}
	if v, ok, _ := r.Get([]byte("drain-b")); !ok || string(v) != "v" {
		t.Fatalf("drained commit lost: %q %v", v, ok)
	}
}

func TestWireFrameLimits(t *testing.T) {
	_, _, addr := startServer(t, 1, server.Config{})
	c, err := shardclient.Dial(addr, "t")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	// A multi-KB value (large for this engine's leaf pages) round-trips
	// through the length-prefixed framing intact.
	big := make([]byte, 2<<10)
	for i := range big {
		big[i] = byte(i)
	}
	if err := c.Set(0, []byte("big"), big); err != nil {
		t.Fatal(err)
	}
	v, ok, err := c.Get(0, []byte("big"))
	if err != nil || !ok || len(v) != len(big) {
		t.Fatalf("big value round-trip: ok=%v err=%v len=%d", ok, err, len(v))
	}
	for i := range v {
		if v[i] != big[i] {
			t.Fatalf("big value corrupted at %d", i)
		}
	}
}

// TestAdmissionTimeoutBounded pins BOTH sides of the queue-timeout
// contract under sustained overload: a queued session must not be
// rejected before QueueTimeout, and must receive its typed rejection
// within QueueTimeout plus a scheduling epsilon — the queue may not hold
// connections indefinitely once the overload outlasts it. Several
// concurrent sessions queue at once, so the admit loop's shared state is
// also exercised under the race detector.
func TestAdmissionTimeoutBounded(t *testing.T) {
	const queueTimeout = 100 * time.Millisecond
	// Generous for loaded CI machines; the admit loop polls every 2ms, so
	// the intrinsic slack is tiny.
	const epsilon = 900 * time.Millisecond
	_, srv, addr := startServer(t, 1, server.Config{
		Admission:    server.AdmitQueue,
		QueueTimeout: queueTimeout,
		Overloaded:   func() bool { return true },
	})
	const sessions = 8
	type outcome struct {
		err  error
		took time.Duration
	}
	results := make(chan outcome, sessions)
	for i := 0; i < sessions; i++ {
		go func() {
			start := time.Now()
			_, err := shardclient.Dial(addr, "t")
			results <- outcome{err: err, took: time.Since(start)}
		}()
	}
	for i := 0; i < sessions; i++ {
		res := <-results
		if !errors.Is(res.err, shardclient.ErrAdmission) {
			t.Fatalf("session %d: %v, want ErrAdmission", i, res.err)
		}
		if res.took < queueTimeout {
			t.Fatalf("session %d rejected after %v, before the %v timeout", i, res.took, queueTimeout)
		}
		if res.took > queueTimeout+epsilon {
			t.Fatalf("session %d held %v, past timeout %v + epsilon %v", i, res.took, queueTimeout, epsilon)
		}
	}
	m := srv.Metrics()
	if m.Rejected != sessions {
		t.Fatalf("metrics: %d rejections, want %d", m.Rejected, sessions)
	}
}

// TestPerTenantCapNoStarvation: one tenant saturating its per-tenant cap
// with a burst of concurrent dials must not starve other tenants — the
// cap is per-tenant isolation, not a global brake. The greedy tenant's
// overflow gets the typed admission rejection; every other tenant's
// session is admitted while the greedy sessions stay parked.
func TestPerTenantCapNoStarvation(t *testing.T) {
	_, _, addr := startServer(t, 1, server.Config{
		MaxSessionsPerTenant: 2,
		MaxSessions:          64,
	})

	// The greedy tenant fires 10 concurrent dials at a cap of 2.
	const greedy = 10
	type res struct {
		c   *shardclient.Client
		err error
	}
	greedyRes := make(chan res, greedy)
	for i := 0; i < greedy; i++ {
		go func() {
			c, err := shardclient.Dial(addr, "greedy")
			greedyRes <- res{c, err}
		}()
	}
	var admitted, rejected int
	for i := 0; i < greedy; i++ {
		r := <-greedyRes
		switch {
		case r.err == nil:
			admitted++
			defer r.c.Close()
		case errors.Is(r.err, shardclient.ErrAdmission):
			rejected++
		default:
			t.Fatalf("greedy dial: %v", r.err)
		}
	}
	if admitted != 2 || rejected != greedy-2 {
		t.Fatalf("greedy tenant: %d admitted / %d rejected, want 2 / %d", admitted, rejected, greedy-2)
	}

	// With greedy's slots pinned open, ten OTHER tenants dial concurrently;
	// every one must be admitted and usable.
	const others = 10
	otherRes := make(chan res, others)
	for i := 0; i < others; i++ {
		tenant := fmt.Sprintf("tenant-%d", i)
		go func() {
			c, err := shardclient.Dial(addr, tenant)
			otherRes <- res{c, err}
		}()
	}
	for i := 0; i < others; i++ {
		r := <-otherRes
		if r.err != nil {
			t.Fatalf("minority tenant starved: %v", r.err)
		}
		if err := r.c.Set(0, []byte("k"), []byte("v")); err != nil {
			t.Fatalf("admitted session unusable: %v", err)
		}
		r.c.Close()
	}
}
