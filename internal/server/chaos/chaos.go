// Package chaos injects deterministic network faults under the wire
// protocol, in the spirit of internal/ssd's device fault rules: a
// Schedule of rules scoped by DIRECTION and FRAME INDEX — connection cuts
// at a frame boundary, mid-frame byte truncation, and read/write stalls —
// applied by a net.Listener/net.Conn wrapper on the server side
// (DESIGN.md §14).
//
// Determinism contract. TCP segmentation makes raw Read/Write call counts
// nondeterministic, so rules are keyed by the only stable coordinate the
// byte stream has: the index of the length-prefixed protocol frame, parsed
// by a per-connection incremental frame scanner and counted GLOBALLY per
// direction across the connection sequence. With a serial client (one
// in-flight request per connection — the protocol has no pipelining), the
// frame sequence each direction carries is a pure function of the client's
// logical history, so two runs of the same seeded history against the same
// schedule cut, truncate and stall at exactly the same logical points —
// regardless of how the kernel chunks the stream. That is what lets
// check.ChaosCampaign replay a chaotic history twice and demand identical
// fingerprints.
package chaos

import (
	"encoding/binary"
	"errors"
	"net"
	"sync"
	"time"
)

// Direction distinguishes the two byte streams of a server-side connection.
type Direction int

const (
	// In is client → server (the server's reads): request frames.
	In Direction = iota
	// Out is server → client (the server's writes): response frames.
	Out
)

func (d Direction) String() string {
	if d == In {
		return "in"
	}
	return "out"
}

// Action is what happens to the scheduled frame.
type Action int

const (
	// Cut closes the connection at the frame's first byte: the frame (and
	// everything after it on this connection) is never delivered. The
	// peer observes an abrupt connection loss.
	Cut Action = iota
	// Truncate delivers the frame's first TruncBytes bytes, then cuts:
	// a mid-frame connection loss (the decoder's ErrTruncatedFrame path).
	Truncate
	// Stall sleeps StallFor before the frame is delivered; the connection
	// survives. Exercises read/write deadlines without changing outcomes.
	Stall
)

func (a Action) String() string {
	switch a {
	case Cut:
		return "cut"
	case Truncate:
		return "truncate"
	}
	return "stall"
}

// Rule schedules one action on the Frame-th protocol frame (0-based,
// counted globally per direction across all connections in accept order).
// Each rule fires at most once.
type Rule struct {
	Dir    Direction
	Frame  uint64
	Action Action
	// TruncBytes is how many of the frame's bytes (counted from its first
	// length-header byte) a Truncate delivers before the cut; clamped to
	// at least 1 so the peer always sees a frame begin.
	TruncBytes int
	// StallFor is the Stall sleep.
	StallFor time.Duration
}

// Stats counts what the schedule observed and injected.
type Stats struct {
	FramesIn, FramesOut uint64 // frames begun per direction
	Cuts                uint64
	Truncations         uint64
	Stalls              uint64
}

// ErrInjectedCut is the error surfaced on a connection killed by a Cut or
// Truncate rule (the peer just sees the connection die).
var ErrInjectedCut = errors.New("chaos: injected connection cut")

// Schedule holds the armed rules and the global per-direction frame
// counters. One Schedule serves every connection of one listener; safe for
// concurrent use.
type Schedule struct {
	mu       sync.Mutex
	rules    map[Direction]map[uint64]*Rule
	next     [2]uint64 // next frame index per direction
	stats    Stats
	disarmed bool
}

// NewSchedule arms rules. Duplicate (Dir, Frame) keys keep the last rule.
func NewSchedule(rules []Rule) *Schedule {
	s := &Schedule{rules: map[Direction]map[uint64]*Rule{In: {}, Out: {}}}
	for i := range rules {
		r := rules[i]
		if r.Action == Truncate && r.TruncBytes < 1 {
			r.TruncBytes = 1
		}
		s.rules[r.Dir][r.Frame] = &r
	}
	return s
}

// Disarm stops injecting (frames are still counted): the campaign's
// clean verification phase runs through the same listener.
func (s *Schedule) Disarm() {
	s.mu.Lock()
	s.disarmed = true
	s.mu.Unlock()
}

// Stats snapshots the counters.
func (s *Schedule) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats
}

// frameStart assigns the next global frame index for dir and returns the
// rule scheduled for it, if any.
func (s *Schedule) frameStart(dir Direction) *Rule {
	s.mu.Lock()
	defer s.mu.Unlock()
	idx := s.next[dir]
	s.next[dir]++
	if dir == In {
		s.stats.FramesIn++
	} else {
		s.stats.FramesOut++
	}
	if s.disarmed {
		return nil
	}
	r := s.rules[dir][idx]
	if r != nil {
		delete(s.rules[dir], idx) // fire at most once
		switch r.Action {
		case Cut:
			s.stats.Cuts++
		case Truncate:
			s.stats.Truncations++
		case Stall:
			s.stats.Stalls++
		}
	}
	return r
}

// Listener wraps every accepted connection with the schedule.
type Listener struct {
	net.Listener
	sched *Schedule
}

// Wrap returns a fault-injecting listener over ln.
func Wrap(ln net.Listener, sched *Schedule) *Listener {
	return &Listener{Listener: ln, sched: sched}
}

func (l *Listener) Accept() (net.Conn, error) {
	c, err := l.Listener.Accept()
	if err != nil {
		return nil, err
	}
	return &Conn{Conn: c, sched: l.sched}, nil
}

// scanner incrementally parses one direction of one connection's byte
// stream into frames and applies the schedule. Chunk boundaries are
// irrelevant: state carries across calls.
type scanner struct {
	dir   Direction
	sched *Schedule

	hdr         [4]byte
	hdrN        int
	payloadLeft int // bytes of opcode+payload still to pass through

	truncLeft int // >0: delivering a truncated frame's budget, cut after
	stall     time.Duration
	cut       bool
}

// scan consumes p, returning how many leading bytes may be delivered and
// whether the connection must be cut immediately after them. A pending
// stall duration is accumulated in s.stall for the caller to sleep off.
func (s *scanner) scan(p []byte) (deliver int, cut bool) {
	i := 0
	for i < len(p) {
		if s.truncLeft > 0 {
			n := min(s.truncLeft, len(p)-i)
			i += n
			s.truncLeft -= n
			if s.truncLeft == 0 {
				return i, true
			}
			continue // n == len(p)-i: chunk exhausted inside the budget
		}
		if s.payloadLeft > 0 {
			n := min(s.payloadLeft, len(p)-i)
			i += n
			s.payloadLeft -= n
			continue
		}
		if s.hdrN == 0 {
			// First byte of a new frame: the scheduling point.
			if r := s.sched.frameStart(s.dir); r != nil {
				switch r.Action {
				case Cut:
					return i, true
				case Truncate:
					s.truncLeft = r.TruncBytes
					continue
				case Stall:
					s.stall += r.StallFor
				}
			}
		}
		take := min(4-s.hdrN, len(p)-i)
		copy(s.hdr[s.hdrN:], p[i:i+take])
		s.hdrN += take
		i += take
		if s.hdrN == 4 {
			s.hdrN = 0
			s.payloadLeft = int(binary.BigEndian.Uint32(s.hdr[:]))
		}
	}
	return i, false
}

// Conn applies the schedule to one server-side connection: reads are the
// In direction, writes Out. After a cut, the underlying connection is
// closed and both directions fail with ErrInjectedCut.
type Conn struct {
	net.Conn
	sched *Schedule

	inS, outS scanner
	initOnce  sync.Once
	dead      bool
}

func (c *Conn) init() {
	c.inS = scanner{dir: In, sched: c.sched}
	c.outS = scanner{dir: Out, sched: c.sched}
}

func (c *Conn) kill() {
	c.dead = true
	c.Conn.Close()
}

func (c *Conn) Read(p []byte) (int, error) {
	c.initOnce.Do(c.init)
	if c.dead {
		return 0, ErrInjectedCut
	}
	n, err := c.Conn.Read(p)
	if n > 0 {
		keep, cut := c.inS.scan(p[:n])
		if d := c.inS.stall; d > 0 {
			c.inS.stall = 0
			time.Sleep(d)
		}
		if cut {
			c.kill()
			if keep == 0 {
				return 0, ErrInjectedCut
			}
			return keep, nil // deliver the prefix; next call reports the cut
		}
	}
	return n, err
}

func (c *Conn) Write(p []byte) (int, error) {
	c.initOnce.Do(c.init)
	if c.dead {
		return 0, ErrInjectedCut
	}
	keep, cut := c.outS.scan(p)
	if d := c.outS.stall; d > 0 {
		c.outS.stall = 0
		time.Sleep(d)
	}
	if !cut {
		return c.Conn.Write(p)
	}
	n := 0
	if keep > 0 {
		n, _ = c.Conn.Write(p[:keep])
	}
	c.kill()
	return n, ErrInjectedCut
}
