package chaos

import (
	"bytes"
	"encoding/binary"
	"testing"
	"time"
)

// frame builds one wire-shaped frame: u32 length | body.
func frame(body []byte) []byte {
	out := make([]byte, 4+len(body))
	binary.BigEndian.PutUint32(out, uint32(len(body)))
	copy(out[4:], body)
	return out
}

// feed pushes stream through a scanner in the given chunk sizes, returning
// the total delivered byte count and whether/where a cut fired.
func feed(s *scanner, stream []byte, chunks []int) (delivered int, cutAt int) {
	cutAt = -1
	i := 0
	for _, n := range chunks {
		if i >= len(stream) {
			break
		}
		if i+n > len(stream) {
			n = len(stream) - i
		}
		keep, cut := s.scan(stream[i : i+n])
		delivered += keep
		if cut {
			return delivered, delivered
		}
		i += n
	}
	return delivered, cutAt
}

// TestScannerChunkIndependence is the determinism core: however the kernel
// chunks the byte stream, the scanner assigns the same frame indices and a
// rule fires at the same logical point — same delivered-byte count, same
// cut position.
func TestScannerChunkIndependence(t *testing.T) {
	var stream []byte
	for i := 0; i < 6; i++ {
		stream = append(stream, frame(bytes.Repeat([]byte{byte(i)}, 3+i*5))...)
	}
	chunkings := [][]int{
		{len(stream)},               // one syscall
		{1, 1, 1, 2, 3, 5, 8, 1000}, // fibonacci-ish dribble
		{7, 7, 7, 7, 7, 7, 7, 7, 7, 7, 7, 7, 7, 7, 7, 7},
		{2, 1, 4, 1, 1, 9, 3, 1, 1, 1, 200},
	}

	for _, tc := range []struct {
		name string
		rule Rule
	}{
		{"cut-frame-3", Rule{Dir: In, Frame: 3, Action: Cut}},
		{"trunc-frame-2", Rule{Dir: In, Frame: 2, Action: Truncate, TruncBytes: 5}},
		{"trunc-frame-0", Rule{Dir: In, Frame: 0, Action: Truncate, TruncBytes: 2}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			var wantDelivered, wantCut int = -2, -2
			for ci, chunks := range chunkings {
				s := &scanner{dir: In, sched: NewSchedule([]Rule{tc.rule})}
				delivered, cutAt := feed(s, stream, chunks)
				if wantDelivered == -2 {
					wantDelivered, wantCut = delivered, cutAt
					continue
				}
				if delivered != wantDelivered || cutAt != wantCut {
					t.Fatalf("chunking %d: delivered=%d cutAt=%d, chunking 0 gave %d/%d",
						ci, delivered, cutAt, wantDelivered, wantCut)
				}
			}
			if wantCut < 0 {
				t.Fatal("rule never fired")
			}
		})
	}
}

// TestScannerCutPosition pins the exact semantics: a Cut on frame k
// delivers frames 0..k-1 completely and nothing of frame k; a Truncate
// delivers exactly TruncBytes of frame k.
func TestScannerCutPosition(t *testing.T) {
	f0, f1, f2 := frame([]byte("aaaa")), frame([]byte("bb")), frame([]byte("cccccc"))
	stream := append(append(append([]byte(nil), f0...), f1...), f2...)

	s := &scanner{dir: In, sched: NewSchedule([]Rule{{Dir: In, Frame: 2, Action: Cut}})}
	keep, cut := s.scan(stream)
	if !cut || keep != len(f0)+len(f1) {
		t.Fatalf("cut: keep=%d cut=%v, want %d,true", keep, cut, len(f0)+len(f1))
	}

	s = &scanner{dir: In, sched: NewSchedule([]Rule{{Dir: In, Frame: 1, Action: Truncate, TruncBytes: 3}})}
	keep, cut = s.scan(stream)
	if !cut || keep != len(f0)+3 {
		t.Fatalf("truncate: keep=%d cut=%v, want %d,true", keep, cut, len(f0)+3)
	}
}

// TestScheduleFireOnce: a rule fires on exactly one frame, and frames keep
// being counted after Disarm while rules stop firing.
func TestScheduleFireOnce(t *testing.T) {
	sched := NewSchedule([]Rule{{Dir: Out, Frame: 1, Action: Stall, StallFor: time.Millisecond}})
	if r := sched.frameStart(Out); r != nil {
		t.Fatal("frame 0: unexpected rule")
	}
	if r := sched.frameStart(Out); r == nil || r.Action != Stall {
		t.Fatal("frame 1: rule did not fire")
	}
	if r := sched.frameStart(Out); r != nil {
		t.Fatal("frame 2: rule fired twice")
	}
	sched.Disarm()
	sched.frameStart(Out)
	st := sched.Stats()
	if st.FramesOut != 4 || st.Stalls != 1 {
		t.Fatalf("stats: %+v, want FramesOut=4 Stalls=1", st)
	}
	if st.FramesIn != 0 {
		t.Fatalf("In frames counted on Out traffic: %+v", st)
	}
}
