// Package mvpbt is a from-scratch Go implementation of the Multi-Version
// Partitioned B-Tree (Riegger, Vinçon, Gottstein, Petrov: "MV-PBT:
// Multi-Version Indexing for Large Datasets and HTAP Workloads", EDBT
// 2020) together with the complete storage engine it lives in: an MVCC
// transaction manager with snapshot isolation, two base-table heap
// organizations (PostgreSQL-style HOT and SIAS append storage), baseline
// indexes (B⁺-Tree, Partitioned B-Tree, LSM-Tree), a buffer manager, and
// a simulated enterprise flash device with the I/O asymmetry of the
// paper's testbed.
//
// # Quick start
//
//	eng := mvpbt.NewEngine(mvpbt.Config{})
//	tbl, _ := eng.NewTable("accounts", mvpbt.HeapSIAS, mvpbt.IndexDef{
//		Name: "pk", Kind: mvpbt.IdxMVPBT, Unique: true,
//		BloomBits: 10, Extract: myKeyExtractor,
//	})
//	tx := eng.Begin()
//	tbl.Insert(tx, row)
//	eng.Commit(tx)
//
// Reads run against transaction snapshots; MV-PBT indexes answer lookups
// and scans with the index-only visibility check — no base-table access is
// needed to decide which versions a transaction sees.
//
// See DESIGN.md for the architecture and EXPERIMENTS.md for the
// reproduction of every figure in the paper's evaluation.
package mvpbt

import (
	"mvpbt/internal/db"
	"mvpbt/internal/index/lsm"
	"mvpbt/internal/ssd"
	"mvpbt/internal/txn"
)

// Engine is the storage engine: device, buffer pool, transaction manager
// and the shared MV-PBT partition buffer.
type Engine = db.Engine

// Config sizes an Engine.
type Config = db.Config

// NewEngine builds an engine.
func NewEngine(cfg Config) *Engine { return db.NewEngine(cfg) }

// Tx is a transaction handle (snapshot isolation).
type Tx = txn.Tx

// Table binds a base-table heap to its indexes.
type Table = db.Table

// Index is one index of a table.
type Index = db.Index

// IndexDef declares an index.
type IndexDef = db.IndexDef

// RowRef identifies a visible row version.
type RowRef = db.RowRef

// Heap organizations (paper §3).
const (
	// HeapHOT is the PostgreSQL-style heap with Heap-Only Tuples:
	// old-to-new chains, two-point invalidation, in-place updates.
	HeapHOT = db.HeapHOT
	// HeapSIAS is Snapshot Isolation Append Storage: append-only,
	// new-to-old chains, one-point invalidation.
	HeapSIAS = db.HeapSIAS
)

// Index structures (paper §5).
const (
	// IdxBTree is the mutable, version-oblivious B⁺-Tree baseline.
	IdxBTree = db.IdxBTree
	// IdxPBT is the version-oblivious Partitioned B-Tree.
	IdxPBT = db.IdxPBT
	// IdxMVPBT is the paper's contribution: the version-aware Multi-Version
	// Partitioned B-Tree with index-only visibility checks.
	IdxMVPBT = db.IdxMVPBT
)

// Reference modes (paper §3.5).
const (
	// RefPhysical stores recordIDs in index entries.
	RefPhysical = db.RefPhysical
	// RefLogical stores VIDs resolved through the indirection layer.
	RefLogical = db.RefLogical
)

// KV is the key-value engine interface shared by the three engines of the
// paper's YCSB comparison.
type KV = db.KV

// LSMOptions tunes the LSM-Tree KV engine.
type LSMOptions = lsm.Options

// MVPBTKVOptions tunes the MV-PBT KV engine.
type MVPBTKVOptions = db.MVPBTKVOptions

// NewBTreeKV creates a clustered B-Tree KV engine.
func NewBTreeKV(e *Engine, name string) (KV, error) { return db.NewBTreeKV(e, name) }

// NewLSMKV creates an LSM-Tree KV engine.
func NewLSMKV(e *Engine, name string, opts LSMOptions) KV { return db.NewLSMKV(e, name, opts) }

// NewMVPBTKV creates a clustered MV-PBT KV engine (the paper's WiredTiger
// integration shape).
func NewMVPBTKV(e *Engine, name string, opts MVPBTKVOptions) (KV, error) {
	return db.NewMVPBTKV(e, name, opts)
}

// IntelP3600 is the device latency profile of the paper's Figure 8.
var IntelP3600 = ssd.IntelP3600
