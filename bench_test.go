package mvpbt_test

// One testing.B benchmark per table/figure of the paper's evaluation.
// Each benchmark runs the corresponding experiment from internal/bench at
// Quick scale and reports the headline figure as custom metrics, printing
// the full paper-style table in verbose mode. Regenerate everything with:
//
//	go test -bench=. -benchmem
//
// or run individual experiments at full scale with cmd/mvpbt-bench.

import (
	"strconv"
	"testing"

	"mvpbt/internal/bench"
)

// runExperiment executes the experiment once per benchmark iteration and
// logs the rendered result table.
func runExperimentHelper(b *testing.B, id string) *bench.Result {
	b.Helper()
	e, ok := bench.Lookup(id)
	if !ok {
		b.Fatalf("unknown experiment %s", id)
	}
	var res *bench.Result
	var err error
	for i := 0; i < b.N; i++ {
		res, err = e.Run(bench.Quick)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.Log("\n" + res.String())
	return res
}

// cell parses the numeric cell at (row, col) of a result.
func cell(b *testing.B, res *bench.Result, row, col int) float64 {
	b.Helper()
	v, err := strconv.ParseFloat(res.Rows[row][col], 64)
	if err != nil {
		b.Fatalf("cell %d/%d: %v", row, col, err)
	}
	return v
}

func BenchmarkFig03_ChainLength(b *testing.B) {
	res := runExperimentHelper(b, "fig3")
	last := len(res.Rows) - 1
	b.ReportMetric(cell(b, res, last, 1), "btree_tx/s@50")
	b.ReportMetric(cell(b, res, last, 2), "pbt_tx/s@50")
	b.ReportMetric(cell(b, res, last, 3), "mvpbt_tx/s@50")
}

func BenchmarkFig08_DeviceIO(b *testing.B) {
	res := runExperimentHelper(b, "fig8")
	b.ReportMetric(cell(b, res, 0, 3), "seqread8k_iops")
	b.ReportMetric(cell(b, res, 6, 3), "randwrite8k_iops")
}

func BenchmarkFig12a_CHThroughput(b *testing.B) {
	res := runExperimentHelper(b, "fig12a")
	b.ReportMetric(cell(b, res, 0, 2), "btree_olap_q/min")
	b.ReportMetric(cell(b, res, 2, 2), "mvpbt_olap_q/min")
	b.ReportMetric(cell(b, res, 2, 1), "mvpbt_oltp_tx/min")
}

func BenchmarkFig12b_VisibilityCheck(b *testing.B) {
	res := runExperimentHelper(b, "fig12b")
	last := len(res.Rows) - 1
	b.ReportMetric(cell(b, res, last, 1), "pbt_vc_ms@120")
	b.ReportMetric(cell(b, res, last, 3), "mvpbt_gc_ms@120")
}

func BenchmarkFig12c_WritePattern(b *testing.B) {
	runExperimentHelper(b, "fig12c")
}

func BenchmarkFig12d_BufferEfficiency(b *testing.B) {
	res := runExperimentHelper(b, "fig12d")
	// base-table requests: physical-reference B-Tree vs MV-PBT.
	b.ReportMetric(cell(b, res, 2, 3), "btree_pr_tbl_req")
	b.ReportMetric(cell(b, res, 4, 3), "mvpbt_tbl_req")
}

func BenchmarkFig13_PartitionFilters(b *testing.B) {
	res := runExperimentHelper(b, "fig13")
	b.ReportMetric(cell(b, res, 0, 1), "bloom_negatives_pct")
	b.ReportMetric(cell(b, res, 0, 3), "bloom_falsepos_pct")
}

func BenchmarkFig14a_BTreeAlternatives(b *testing.B) {
	res := runExperimentHelper(b, "fig14a")
	last := len(res.Rows) - 1
	b.ReportMetric(cell(b, res, last, 2), "sias_pr_tx/min")
	b.ReportMetric(cell(b, res, last, 3), "sias_lr_tx/min")
}

func BenchmarkFig14b_IndexApproaches(b *testing.B) {
	res := runExperimentHelper(b, "fig14b")
	last := len(res.Rows) - 1
	b.ReportMetric(cell(b, res, last, 2), "pbt_pr_tx/min")
	b.ReportMetric(cell(b, res, last, 4), "mvpbt_tx/min")
}

func BenchmarkFig14c_FilterThroughput(b *testing.B) {
	res := runExperimentHelper(b, "fig14c")
	b.ReportMetric(cell(b, res, 0, 1), "nofilter_tx/min")
	b.ReportMetric(cell(b, res, 2, 1), "bloom_prefix_tx/min")
}

func BenchmarkFig14d_GarbageCollection(b *testing.B) {
	res := runExperimentHelper(b, "fig14d")
	b.ReportMetric(cell(b, res, 0, 1), "gc_tx/min")
	b.ReportMetric(cell(b, res, 1, 1), "nogc_tx/min")
}

func BenchmarkFig15a_YCSB(b *testing.B) {
	res := runExperimentHelper(b, "fig15a")
	b.ReportMetric(cell(b, res, 0, 2), "lsm_A_kops")
	b.ReportMetric(cell(b, res, 0, 3), "mvpbt_A_kops")
}

func BenchmarkFig15b_PartitionsOverTime(b *testing.B) {
	res := runExperimentHelper(b, "fig15b")
	last := len(res.Rows) - 1
	b.ReportMetric(cell(b, res, last, 2), "partitions")
}

func BenchmarkCommit_GroupCommit(b *testing.B) {
	res := runExperimentHelper(b, "commit")
	// Rows: off×{1,8,64} then on×{1,8,64}; headline is the 64-committer pair.
	b.ReportMetric(cell(b, res, 2, 2), "off_commits/s@64")
	b.ReportMetric(cell(b, res, 5, 2), "on_commits/s@64")
	b.ReportMetric(cell(b, res, 5, 4), "on_flushes/commit@64")
}

// parallelHarness builds the shared read-path scaling fixture once per
// benchmark (outside the timed region) and starts the background writer.
func parallelHarness(b *testing.B) (*bench.ParallelHarness, func() int) {
	b.Helper()
	h, err := bench.NewParallelHarness(bench.Quick)
	if err != nil {
		b.Fatal(err)
	}
	return h, h.StartWriter()
}

// BenchmarkParallelLookup drives point lookups from GOMAXPROCS goroutines
// (override with -cpu) against a buffer-resident MV-PBT while one writer
// goroutine churns versions. Compare -cpu 1 vs -cpu 8 ops/s; the numbers
// are tracked in EXPERIMENTS.md.
func BenchmarkParallelLookup(b *testing.B) {
	h, stop := parallelHarness(b)
	defer stop()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		c := h.NewClient()
		defer c.Close()
		for pb.Next() {
			if err := c.Lookup(); err != nil {
				b.Error(err)
				return
			}
		}
	})
}

// BenchmarkParallelScan is the short-range-scan variant of
// BenchmarkParallelLookup (50 entries per scan).
func BenchmarkParallelScan(b *testing.B) {
	h, stop := parallelHarness(b)
	defer stop()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		c := h.NewClient()
		defer c.Close()
		for pb.Next() {
			if err := c.Scan(); err != nil {
				b.Error(err)
				return
			}
		}
	})
}

func BenchmarkExtraWA_WriteAmplification(b *testing.B) {
	res := runExperimentHelper(b, "extra-wa")
	b.ReportMetric(cell(b, res, 1, 3), "lsm_write_amp")
	b.ReportMetric(cell(b, res, 2, 3), "mvpbt_write_amp")
}

func BenchmarkExtraMerge_PartitionMerging(b *testing.B) {
	res := runExperimentHelper(b, "extra-merge")
	b.ReportMetric(cell(b, res, 0, 1), "partitions_no_merge")
	b.ReportMetric(cell(b, res, 1, 1), "partitions_merged")
}
